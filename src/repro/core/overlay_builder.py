"""Phase 3: recursive broker overlay construction (paper Section V).

The overlay is built layer by layer.  Each broker allocated by the
previous run of the subscription allocation algorithm is mapped to a
*pseudo-subscription* — the OR of all bit vectors it serves, with the
bandwidth requirement of the single inter-broker stream feeding it —
and the same allocation algorithm is invoked on those pseudo-units to
allocate the next layer of (parent) brokers.  The recursion ends when a
single broker is allocated: the tree root, where all publishers
initially attach before GRAPE relocates them.

Three optimizations run after each layer is allocated, in the paper's
order:

A. **Eliminate pure forwarding brokers** — a parent with exactly one
   child and no local subscriptions merely relays traffic; deallocate
   it and promote the child.
B. **Takeover children broker roles** — a parent with spare capacity
   absorbs the units of its least-utilized children outright,
   deallocating them.
C. **Best-fit broker replacement** — swap each allocated broker for the
   unused broker whose capacity best fits its actual load, freeing the
   big brokers (and powering off oversized ones).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.capacity import AllocationResult, BrokerBin, BrokerSpec, sorted_broker_pool
from repro.core.deployment import BrokerTree
from repro.core.profiles import PublisherDirectory
from repro.core.units import AllocationUnit

AllocatorFactory = Callable[[], object]


@dataclass
class OverlayBuildStats:
    """Diagnostics of one Phase-3 run (used by the ablation bench)."""

    layers: int = 0
    pure_forwarders_eliminated: int = 0
    children_taken_over: int = 0
    best_fit_replacements: int = 0
    fallback_roots: int = 0


class OverlayBuilder:
    """Recursive overlay construction with toggleable optimizations.

    Parameters
    ----------
    allocator_factory:
        Zero-argument callable returning a fresh Phase-2 allocator; the
        same algorithm used for subscriptions builds the overlay, which
        keeps the whole allocation scheme consistent (paper §V).
    """

    def __init__(
        self,
        allocator_factory: AllocatorFactory,
        eliminate_pure_forwarders: bool = True,
        takeover_children: bool = True,
        best_fit_replacement: bool = True,
    ):
        self._allocator_factory = allocator_factory
        self.eliminate_pure_forwarders = eliminate_pure_forwarders
        self.takeover_children = takeover_children
        self.best_fit_replacement = best_fit_replacement
        self.last_stats = OverlayBuildStats()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def build(
        self,
        phase2_result: AllocationResult,
        pool: Sequence[BrokerSpec],
        directory: PublisherDirectory,
    ) -> BrokerTree:
        """Connect the Phase-2 brokers into a tree."""
        stats = OverlayBuildStats()
        self.last_stats = stats
        specs: Dict[str, BrokerSpec] = {spec.broker_id: spec for spec in pool}
        broker_units: Dict[str, List[AllocationUnit]] = {
            bin_.spec.broker_id: list(bin_.units) for bin_ in phase2_result.bins
        }
        children: Dict[str, List[str]] = {}
        current: List[str] = [bin_.spec.broker_id for bin_ in phase2_result.bins]
        used: Set[str] = set(current)
        remaining: List[BrokerSpec] = [
            spec for spec in pool if spec.broker_id not in used
        ]

        if not current:
            # Degenerate: nothing allocated.  Activate one broker so the
            # overlay exists (publishers still need somewhere to attach).
            best = sorted_broker_pool(pool)[0]
            return self._finish(best.broker_id, children, broker_units)

        while len(current) > 1:
            stats.layers += 1
            pseudo_units = [
                AllocationUnit.for_child_broker(broker_id, broker_units[broker_id], directory)
                for broker_id in current
            ]
            allocator = self._allocator_factory()
            result = allocator.allocate(pseudo_units, remaining, directory)
            if not result.success or result.broker_count >= len(current):
                current = self._fallback_layer(
                    current, remaining, children, broker_units, directory, stats
                )
                break
            layer: List[str] = []
            for bin_ in result.bins:
                parent_id = bin_.spec.broker_id
                child_ids = [
                    child for unit in bin_.units for child in unit.child_broker_ids
                ]
                if self.eliminate_pure_forwarders and len(child_ids) == 1:
                    # Optimization A: the would-be parent purely forwards
                    # one stream; skip it and promote the lone child.
                    stats.pure_forwarders_eliminated += 1
                    layer.append(child_ids[0])
                    continue
                used.add(parent_id)
                children[parent_id] = list(child_ids)
                broker_units[parent_id] = list(bin_.units)
                layer.append(parent_id)
            remaining = [spec for spec in remaining if spec.broker_id not in used]
            if self.takeover_children:
                self._takeover_pass(layer, children, broker_units, specs,
                                    remaining, used, directory, stats)
            if self.best_fit_replacement:
                remaining = self._best_fit_pass(
                    layer, children, broker_units, specs, remaining, used,
                    directory, stats
                )
            if len(layer) >= len(current):
                current = self._fallback_layer(
                    layer, remaining, children, broker_units, directory, stats
                )
                break
            current = layer

        return self._finish(current[0], children, broker_units)

    # ------------------------------------------------------------------
    # Optimization passes
    # ------------------------------------------------------------------
    def _takeover_pass(
        self,
        layer: List[str],
        children: Dict[str, List[str]],
        broker_units: Dict[str, List[AllocationUnit]],
        specs: Dict[str, BrokerSpec],
        remaining: List[BrokerSpec],
        used: Set[str],
        directory: PublisherDirectory,
        stats: OverlayBuildStats,
    ) -> None:
        """Optimization B: parents absorb under-utilized children.

        Children are tried in order of least-to-highest utilization,
        which maximizes how many the parent can take over (paper §V-B).
        A child is absorbed only if the parent can serve *all* of the
        child's units directly, alongside the streams of its other
        children.
        """
        for parent_id in layer:
            kid_ids = children.get(parent_id)
            if not kid_ids:
                continue
            def child_load(child_id: str) -> Tuple[float, str]:
                load = sum(unit.delivery_bandwidth for unit in broker_units[child_id])
                return (load, child_id)

            for child_id in sorted(kid_ids, key=child_load):
                # A child bundled into a merged pseudo-unit cannot be
                # absorbed individually — its stream is inseparable from
                # its co-located siblings'.
                if not any(
                    unit.child_broker_ids == (child_id,)
                    for unit in broker_units[parent_id]
                ):
                    continue
                grandchildren = children.get(child_id, [])
                candidate_units = [
                    unit
                    for unit in broker_units[parent_id]
                    if unit.child_broker_ids != (child_id,)
                ] + list(broker_units[child_id])
                bin_ = BrokerBin(specs[parent_id], directory)
                feasible = True
                for unit in candidate_units:
                    if bin_.can_accept(unit):
                        bin_.add(unit)
                    else:
                        feasible = False
                        break
                if not feasible:
                    continue
                # Absorb: the child's units and children move to the parent.
                stats.children_taken_over += 1
                broker_units[parent_id] = candidate_units
                children[parent_id] = [
                    kid for kid in children[parent_id] if kid != child_id
                ] + list(grandchildren)
                children.pop(child_id, None)
                broker_units.pop(child_id, None)
                used.discard(child_id)
                remaining.append(specs[child_id])

    def _best_fit_pass(
        self,
        layer: List[str],
        children: Dict[str, List[str]],
        broker_units: Dict[str, List[AllocationUnit]],
        specs: Dict[str, BrokerSpec],
        remaining: List[BrokerSpec],
        used: Set[str],
        directory: PublisherDirectory,
        stats: OverlayBuildStats,
    ) -> List[BrokerSpec]:
        """Optimization C: swap each broker for the tightest-fitting one."""
        for index, broker_id in enumerate(list(layer)):
            units = broker_units.get(broker_id, [])
            current_spec = specs[broker_id]
            best: Optional[BrokerSpec] = None
            for candidate in remaining:
                if candidate.total_output_bandwidth >= current_spec.total_output_bandwidth:
                    continue
                bin_ = BrokerBin(candidate, directory)
                if all(self._try_add(bin_, unit) for unit in units):
                    if best is None or (
                        candidate.total_output_bandwidth < best.total_output_bandwidth
                    ):
                        best = candidate
            if best is None:
                continue
            stats.best_fit_replacements += 1
            self._rename_broker(broker_id, best.broker_id, layer, index,
                                children, broker_units)
            used.discard(broker_id)
            used.add(best.broker_id)
            remaining = [spec for spec in remaining if spec.broker_id != best.broker_id]
            remaining.append(current_spec)
        return remaining

    @staticmethod
    def _try_add(bin_: BrokerBin, unit: AllocationUnit) -> bool:
        if bin_.can_accept(unit):
            bin_.add(unit)
            return True
        return False

    @staticmethod
    def _rename_broker(
        old_id: str,
        new_id: str,
        layer: List[str],
        index: int,
        children: Dict[str, List[str]],
        broker_units: Dict[str, List[AllocationUnit]],
    ) -> None:
        layer[index] = new_id
        if old_id in children:
            children[new_id] = children.pop(old_id)
        if old_id in broker_units:
            broker_units[new_id] = broker_units.pop(old_id)
        for parent_id, kids in children.items():
            children[parent_id] = [new_id if kid == old_id else kid for kid in kids]

    # ------------------------------------------------------------------
    # Fallbacks and finishing
    # ------------------------------------------------------------------
    def _fallback_layer(
        self,
        current: List[str],
        remaining: List[BrokerSpec],
        children: Dict[str, List[str]],
        broker_units: Dict[str, List[AllocationUnit]],
        directory: PublisherDirectory,
        stats: OverlayBuildStats,
    ) -> List[str]:
        """Force a root when recursion cannot shrink the layer.

        Happens when the remaining pool is too small or the allocator
        cannot pack the pseudo-units into fewer brokers.  The most
        resourceful remaining broker (or, failing that, the least
        loaded broker of the current layer) becomes the root and all
        other layer brokers attach to it directly.
        """
        stats.fallback_roots += 1
        if remaining:
            root_spec = sorted_broker_pool(remaining)[0]
            root_id = root_spec.broker_id
            kids = list(current)
        else:
            def load(broker_id: str) -> Tuple[float, str]:
                total = sum(unit.delivery_bandwidth for unit in broker_units[broker_id])
                return (total, broker_id)

            root_id = min(current, key=load)
            kids = [broker_id for broker_id in current if broker_id != root_id]
        pseudo = [
            AllocationUnit.for_child_broker(kid, broker_units[kid], directory)
            for kid in kids
        ]
        children[root_id] = list(kids)
        broker_units.setdefault(root_id, [])
        broker_units[root_id] = broker_units[root_id] + pseudo
        return [root_id]

    @staticmethod
    def _finish(
        root: str,
        children: Dict[str, List[str]],
        broker_units: Dict[str, List[AllocationUnit]],
    ) -> BrokerTree:
        tree = BrokerTree(root)
        stack = [root]
        while stack:
            parent = stack.pop()
            for child in children.get(parent, ()):  # deterministic order
                tree.add_broker(child, parent)
                stack.append(child)
        for broker_id in tree.brokers:
            tree.set_units(broker_id, broker_units.get(broker_id, []))
        return tree
