"""Deployment descriptions: broker trees and complete system layouts.

A :class:`BrokerTree` is the output of Phase 3 — which brokers are
active, how they are wired, and which allocation units each serves.  A
:class:`Deployment` adds client placement (where every subscriber and
publisher attaches) and is what CROC hands to the overlay to execute
the reconfiguration.  Baseline approaches (MANUAL, AUTOMATIC) produce
:class:`Deployment` objects directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.units import AllocationUnit


class BrokerTree:
    """A rooted tree of active brokers plus their allocated units."""

    def __init__(self, root: str):
        self.root = root
        self._children: Dict[str, List[str]] = {root: []}
        self._parent: Dict[str, Optional[str]] = {root: None}
        self.broker_units: Dict[str, List[AllocationUnit]] = {root: []}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_broker(self, broker_id: str, parent: str) -> None:
        if broker_id in self._parent:
            raise ValueError(f"broker {broker_id!r} already in tree")
        if parent not in self._parent:
            raise ValueError(f"parent {parent!r} not in tree")
        self._children[broker_id] = []
        self._children[parent].append(broker_id)
        self._parent[broker_id] = parent
        self.broker_units.setdefault(broker_id, [])

    def set_units(self, broker_id: str, units: Sequence[AllocationUnit]) -> None:
        if broker_id not in self._parent:
            raise ValueError(f"broker {broker_id!r} not in tree")
        self.broker_units[broker_id] = list(units)

    # ------------------------------------------------------------------
    # Topology queries
    # ------------------------------------------------------------------
    @property
    def brokers(self) -> List[str]:
        return list(self._parent)

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, broker_id: str) -> bool:
        return broker_id in self._parent

    def children(self, broker_id: str) -> List[str]:
        return list(self._children.get(broker_id, ()))

    def parent(self, broker_id: str) -> Optional[str]:
        return self._parent[broker_id]

    def edges(self) -> Iterator[Tuple[str, str]]:
        """(parent, child) pairs."""
        for parent, kids in self._children.items():
            for child in kids:
                yield (parent, child)

    def depth(self, broker_id: str) -> int:
        depth = 0
        node: Optional[str] = broker_id
        while node is not None and node != self.root:
            node = self._parent[node]
            depth += 1
        return depth

    def height(self) -> int:
        return max((self.depth(broker) for broker in self._parent), default=0)

    def leaves(self) -> List[str]:
        return [broker for broker, kids in self._children.items() if not kids]

    def path_to_root(self, broker_id: str) -> List[str]:
        """Brokers from ``broker_id`` up to (and including) the root."""
        path = [broker_id]
        node = self._parent[broker_id]
        while node is not None:
            path.append(node)
            node = self._parent[node]
        return path

    # ------------------------------------------------------------------
    # Derived placements
    # ------------------------------------------------------------------
    def subscription_placement(self) -> Dict[str, str]:
        """sub_id → broker_id, from the real (non-pseudo) units."""
        placement: Dict[str, str] = {}
        for broker_id, units in self.broker_units.items():
            for unit in units:
                for record in unit.members:
                    placement[record.sub_id] = broker_id
        return placement

    def validate(self) -> None:
        """Structural invariants (used by tests): acyclic, connected."""
        seen: Set[str] = set()
        stack = [self.root]
        while stack:
            node = stack.pop()
            assert node not in seen, f"cycle through {node!r}"
            seen.add(node)
            stack.extend(self._children[node])
        assert seen == set(self._parent), "disconnected brokers in tree"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BrokerTree(root={self.root!r}, brokers={len(self)})"


@dataclass
class Deployment:
    """A complete system layout CROC can execute.

    Attributes
    ----------
    tree:
        Active brokers and their wiring.
    subscription_placement:
        sub_id → broker the subscriber should attach to.
    publisher_placement:
        adv_id → broker the publisher should attach to.
    approach:
        Name of the algorithm that produced this layout (for reports).
    """

    tree: BrokerTree
    subscription_placement: Dict[str, str] = field(default_factory=dict)
    publisher_placement: Dict[str, str] = field(default_factory=dict)
    approach: str = ""

    @property
    def active_broker_count(self) -> int:
        return len(self.tree)

    def validate(self) -> None:
        self.tree.validate()
        for sub_id, broker_id in self.subscription_placement.items():
            assert broker_id in self.tree, (
                f"subscription {sub_id!r} placed on inactive broker {broker_id!r}"
            )
        for adv_id, broker_id in self.publisher_placement.items():
            assert broker_id in self.tree, (
                f"publisher {adv_id!r} placed on inactive broker {broker_id!r}"
            )
