"""MANUAL and AUTOMATIC baseline deployments (paper §VI).

MANUAL is the paper's initial topology for every experiment: a
fan-out-2 broker tree (to minimize the chance of overloading internal
brokers) with publishers placed randomly.  Under the homogeneous
scenario subscribers are placed randomly too; under the heterogeneous
scenario the most resourceful brokers sit at the top of the tree and
subscribers are spread proportionally to broker resource levels.

AUTOMATIC wires the broker overlay randomly and places all clients
randomly.  Both are "representative of typical publish/subscribe
deployments where the measure of a good topology is not easily
quantifiable".
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

from repro.core.capacity import BrokerSpec, sorted_broker_pool
from repro.core.deployment import BrokerTree, Deployment
from repro.core.rng import SeededRng


def _fanout_tree(broker_ids: Sequence[str], fanout: int = 2) -> BrokerTree:
    """A complete ``fanout``-ary tree in the given broker order."""
    tree = BrokerTree(broker_ids[0])
    for index in range(1, len(broker_ids)):
        parent = broker_ids[(index - 1) // fanout]
        tree.add_broker(broker_ids[index], parent)
    return tree


def _random_tree(broker_ids: Sequence[str], rng: SeededRng) -> BrokerTree:
    """A uniformly random recursive tree (random attachment)."""
    order = rng.shuffled(broker_ids)
    tree = BrokerTree(order[0])
    for index in range(1, len(order)):
        parent = order[rng.randint(0, index - 1)]
        tree.add_broker(order[index], parent)
    return tree


def _proportional_choice(
    rng: SeededRng, brokers: Sequence[BrokerSpec]
) -> str:
    """Pick a broker with probability proportional to its bandwidth."""
    total = sum(spec.total_output_bandwidth for spec in brokers)
    if total <= 0:
        return rng.choice(brokers).broker_id
    point = rng.uniform(0.0, total)
    cumulative = 0.0
    for spec in brokers:
        cumulative += spec.total_output_bandwidth
        if point <= cumulative:
            return spec.broker_id
    return brokers[-1].broker_id


def manual_deployment(
    pool: Sequence[BrokerSpec],
    subscription_ids: Iterable[str],
    adv_ids: Iterable[str],
    rng: SeededRng,
    heterogeneous: bool = False,
    fanout: int = 2,
) -> Deployment:
    """The paper's MANUAL baseline (and every experiment's start state)."""
    if not pool:
        raise ValueError("broker pool is empty")
    if heterogeneous:
        ordered = [spec.broker_id for spec in sorted_broker_pool(pool)]
    else:
        ordered = sorted(spec.broker_id for spec in pool)
    tree = _fanout_tree(ordered, fanout)
    specs = list(pool)
    subscription_placement: Dict[str, str] = {}
    for sub_id in subscription_ids:
        if heterogeneous:
            subscription_placement[sub_id] = _proportional_choice(rng, specs)
        else:
            subscription_placement[sub_id] = rng.choice(ordered)
    publisher_placement = {adv_id: rng.choice(ordered) for adv_id in adv_ids}
    return Deployment(
        tree=tree,
        subscription_placement=subscription_placement,
        publisher_placement=publisher_placement,
        approach="manual",
    )


def automatic_deployment(
    pool: Sequence[BrokerSpec],
    subscription_ids: Iterable[str],
    adv_ids: Iterable[str],
    rng: SeededRng,
) -> Deployment:
    """The AUTOMATIC baseline: everything random."""
    if not pool:
        raise ValueError("broker pool is empty")
    broker_ids = sorted(spec.broker_id for spec in pool)
    tree = _random_tree(broker_ids, rng)
    subscription_placement = {
        sub_id: rng.choice(broker_ids) for sub_id in subscription_ids
    }
    publisher_placement = {adv_id: rng.choice(broker_ids) for adv_id in adv_ids}
    return Deployment(
        tree=tree,
        subscription_placement=subscription_placement,
        publisher_placement=publisher_placement,
        approach="automatic",
    )
