"""Columnar bit-plane profile store with vectorized closeness rows.

The fused kernel (:mod:`repro.core.kernel`) packs each *pure*
subscription profile into one big int laid out on a shared
:class:`~repro.core.kernel.BitPlaneLayout`.  This module is the next
step: all packed profiles live together as **rows of contiguous
little-endian 64-bit words** so a one-vs-all closeness row becomes a
single AND + popcount sweep over a matrix instead of ``n`` big-int
operations.

Two backends share one bit-identical row layout (word ``j`` of a row
holds plane bits ``64*j .. 64*j+63``):

``numpy``
    A growing ``(rows, words)`` ``uint64`` matrix; intersections are
    ``bitwise_count(matrix[candidates] & matrix[i]).sum(axis=1)``.
``python``
    One big int per row, counted via :mod:`repro.core.popcount`.  Core
    stays dependency-free: this backend is selected automatically when
    numpy (or ``numpy.bitwise_count``) is unavailable.

Both backends produce identical integer counts, and
:meth:`ColumnarStore.closeness_rows` keeps float identity with the
scalar metrics because every intermediate (``i``, ``i*i``, ``u``) is an
exact integer far below 2**53, so the final IEEE-754 division is the
same correctly-rounded operation the per-pair path performs.

Env toggles (mirroring ``REPRO_CLOSENESS_KERNEL``):

``REPRO_COLUMNAR``
    ``0``/``off``/``false``/``no`` disables the store (kernel falls
    back to per-pair big-int ops).  Default: on.
``REPRO_COLUMNAR_BACKEND``
    ``auto`` (default), ``numpy``, or ``python``.
"""

from __future__ import annotations

import os
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.closeness import XOR_MAX
from repro.core.popcount import popcount

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via backend forcing
    _np = None  # type: ignore[assignment]

#: Env var disabling the columnar store ("0"/"off"/"false"/"no").
COLUMNAR_ENV_VAR = "REPRO_COLUMNAR"

#: Env var forcing the backend ("auto"/"numpy"/"python").
BACKEND_ENV_VAR = "REPRO_COLUMNAR_BACKEND"

_DISABLED = frozenset({"0", "off", "false", "no"})

#: Metric-name → evaluation mode, identical to the fused kernel's map.
_MODES = {"intersect": 0, "xor": 1, "ios": 2, "iou": 3}


def numpy_available() -> bool:
    """Whether the numpy backend can run (needs ``bitwise_count``)."""
    return _np is not None and hasattr(_np, "bitwise_count")


def columnar_enabled(override: Optional[bool] = None) -> bool:
    """Resolve the columnar on/off switch.

    An explicit ``override`` wins; otherwise ``REPRO_COLUMNAR``
    decides; the default is on.
    """
    if override is not None:
        return override
    value = os.environ.get(COLUMNAR_ENV_VAR)
    if value is None:
        return True
    return value.strip().lower() not in _DISABLED


def resolve_backend(requested: Optional[str] = None) -> str:
    """Pick ``"numpy"`` or ``"python"``.

    ``requested`` (or ``REPRO_COLUMNAR_BACKEND``) may be ``auto`` —
    numpy when usable, python otherwise — or an explicit backend.
    Forcing ``numpy`` without a usable numpy is an error rather than a
    silent fallback: a benchmark that silently degraded would lie.
    """
    if requested is None:
        requested = os.environ.get(BACKEND_ENV_VAR, "auto")
    name = requested.strip().lower() or "auto"
    if name == "auto":
        return "numpy" if numpy_available() else "python"
    if name == "numpy":
        if not numpy_available():
            raise RuntimeError(
                "columnar backend 'numpy' requested but numpy with "
                "bitwise_count is not importable"
            )
        return "numpy"
    if name == "python":
        return "python"
    raise ValueError(
        f"unknown columnar backend {requested!r}; expected auto, numpy, "
        "or python"
    )


class ColumnarStore:
    """Packed profile rows over a fixed bit-plane width.

    Rows are allocated by :meth:`add_row` and recycled by
    :meth:`free_row` through a LIFO free list — CRAM's probe merges
    pack and forget pseudo-profiles constantly, and reuse keeps the
    matrix bounded by the number of *live* profiles, not the number of
    packs ever performed.
    """

    __slots__ = ("backend", "total_bits", "words", "_free", "_high",
                 "_matrix", "_cards", "_rows")

    def __init__(self, total_bits: int, backend: Optional[str] = None):
        self.backend = resolve_backend(backend)
        self.total_bits = max(0, int(total_bits))
        self.words = (self.total_bits + 63) // 64
        self._free: List[int] = []
        self._high = 0
        if self.backend == "numpy":
            self._matrix: Any = _np.zeros((64, self.words), dtype=_np.uint64)
            self._cards: Any = _np.zeros(64, dtype=_np.int64)
            self._rows: List[int] = []
        else:
            self._matrix = None
            self._cards = None
            self._rows = []

    # ------------------------------------------------------------------
    # Row lifecycle
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of live (allocated, not freed) rows."""
        return self._high - len(self._free)

    @property
    def high_water(self) -> int:
        """Rows ever allocated simultaneously (matrix height in use)."""
        return self._high

    def _grow_to(self, rows: int) -> None:
        # Callers bump _high before growing, so copy the whole old
        # matrix (every previously valid row), not a _high-based slice.
        old = int(self._matrix.shape[0])
        if rows <= old:
            return
        capacity = old
        while capacity < rows:
            capacity *= 2
        matrix = _np.zeros((capacity, self.words), dtype=_np.uint64)
        matrix[:old] = self._matrix
        cards = _np.zeros(capacity, dtype=_np.int64)
        cards[:old] = self._cards
        self._matrix = matrix
        self._cards = cards

    def _row_words(self, bits: int) -> Any:
        raw = bits.to_bytes(self.words * 8, "little")
        return _np.frombuffer(raw, dtype="<u8")

    def add_row(self, bits: int) -> int:
        """Store a packed pattern; returns the row index."""
        if self._free:
            row = self._free.pop()
        else:
            row = self._high
            self._high += 1
            if self.backend == "numpy":
                self._grow_to(self._high)
            else:
                self._rows.append(0)
        if self.backend == "numpy":
            if self.words:
                self._matrix[row] = self._row_words(bits)
            self._cards[row] = popcount(bits)
        else:
            self._rows[row] = bits
        return row

    def add_rows(self, patterns: Sequence[int]) -> List[int]:
        """Bulk-append packed patterns (streaming ingest fast path).

        Rows are always appended at the high-water mark (the free list
        is not consulted); one buffer build + one matrix assignment per
        chunk instead of per row.
        """
        if not patterns:
            return []
        start = self._high
        count = len(patterns)
        self._high += count
        if self.backend == "numpy":
            self._grow_to(self._high)
            if self.words:
                raw = b"".join(
                    bits.to_bytes(self.words * 8, "little")
                    for bits in patterns
                )
                block = _np.frombuffer(raw, dtype="<u8")
                self._matrix[start : self._high] = block.reshape(
                    count, self.words
                )
            self._cards[start : self._high] = [
                popcount(bits) for bits in patterns
            ]
        else:
            self._rows.extend(patterns)
        return list(range(start, self._high))

    def free_row(self, row: int) -> None:
        """Recycle a row (LIFO, so probe churn reuses hot rows)."""
        if self.backend == "numpy":
            if self.words:
                self._matrix[row] = 0
            self._cards[row] = 0
        else:
            self._rows[row] = 0
        self._free.append(row)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def row_bits(self, row: int) -> int:
        """The packed pattern of a row (both backends, byte-identical)."""
        if self.backend == "numpy":
            if not self.words:
                return 0
            return int.from_bytes(self._matrix[row].tobytes(), "little")
        return self._rows[row]

    def cardinality(self, row: int) -> int:
        if self.backend == "numpy":
            return int(self._cards[row])
        return popcount(self._rows[row])

    # ------------------------------------------------------------------
    # Vectorized sweeps
    # ------------------------------------------------------------------
    def intersections(self, row: int, candidates: Sequence[int]) -> List[int]:
        """``|row ∩ c|`` for every candidate row, in candidate order."""
        if not candidates:
            return []
        if self.backend == "numpy":
            if not self.words:
                return [0] * len(candidates)
            idx = _np.asarray(candidates, dtype=_np.intp)
            planes = self._matrix[idx] & self._matrix[row]
            counts = _np.bitwise_count(planes).sum(axis=1, dtype=_np.int64)
            return counts.tolist()
        mine = self._rows[row]
        rows = self._rows
        return [popcount(mine & rows[c]) for c in candidates]

    def pair_counts(
        self, row: int, candidates: Sequence[int]
    ) -> Tuple[List[int], List[int]]:
        """``(intersections, unions)`` against every candidate row.

        Unions come from cached cardinalities (``|a|+|b|-|a∩b|``) —
        no second sweep.
        """
        inters = self.intersections(row, candidates)
        mine = self.cardinality(row)
        unions = [
            mine + self.cardinality(c) - inter
            for c, inter in zip(candidates, inters)
        ]
        return inters, unions

    def closeness_rows(
        self, name: str, row: int, candidates: Sequence[int]
    ) -> List[float]:
        """One-vs-all closeness values, bit-identical to the scalar path.

        ``name`` is a prunable-agnostic metric name (``intersect``,
        ``xor``, ``ios``, ``iou``).  All integer intermediates are exact
        in float64 (``i*i < 2**53`` for any realistic plane width), so
        each output is the same single correctly-rounded division the
        per-pair metric computes.
        """
        mode = _MODES.get(name)
        if mode is None:
            raise KeyError(f"unknown closeness metric {name!r}")
        if not candidates:
            return []
        if self.backend == "numpy":
            return self._closeness_rows_numpy(mode, row, candidates)
        inters, unions = self.pair_counts(row, candidates)
        out: List[float] = []
        mine = self.cardinality(row)
        for c, intersect, union in zip(candidates, inters, unions):
            if mode == 0:
                out.append(float(intersect))
            elif mode == 1:
                xor = union - intersect
                out.append(XOR_MAX if xor == 0 else 1.0 / xor)
            elif intersect == 0:
                out.append(0.0)
            elif mode == 2:
                other = popcount(self._rows[c])
                out.append(intersect * intersect / (mine + other))
            else:
                out.append(intersect * intersect / union)
        return out

    def _closeness_rows_numpy(
        self, mode: int, row: int, candidates: Sequence[int]
    ) -> List[float]:
        idx = _np.asarray(candidates, dtype=_np.intp)
        if self.words:
            planes = self._matrix[idx] & self._matrix[row]
            inter = _np.bitwise_count(planes).sum(axis=1, dtype=_np.int64)
        else:
            inter = _np.zeros(len(candidates), dtype=_np.int64)
        if mode == 0:
            values: Any = inter.astype(_np.float64)
            return values.tolist()
        union = self._cards[row] + self._cards[idx] - inter
        if mode == 1:
            xor = union - inter
            values = _np.full(len(candidates), XOR_MAX, dtype=_np.float64)
            nonzero = xor != 0
            _np.divide(1.0, xor, out=values, where=nonzero)
            return values.tolist()
        inter_f = inter.astype(_np.float64)
        numerator = inter_f * inter_f  # exact: i*i < 2**53
        denominator = (
            (self._cards[row] + self._cards[idx]).astype(_np.float64)
            if mode == 2
            else union.astype(_np.float64)
        )
        values = _np.zeros(len(candidates), dtype=_np.float64)
        hit = inter != 0
        _np.divide(numerator, denominator, out=values, where=hit)
        return values.tolist()
