"""GRAPE: Greedy Relocation Algorithm for Publishers of Events.

After Phase 3, every publisher sits at the root of the new tree.
GRAPE (Cheung & Jacobsen, the paper's reference [5]) strategically
relocates each publisher to the broker that minimizes either the total
broker message rate its traffic induces (*load* objective) or the
average delivery delay to its subscribers (*delay* objective), with a
priority weight trading the two off.

On a tree, a publication from attachment point ``v`` crosses edge ``e``
iff the far side of ``e`` (seen from ``v``) contains a matching
subscriber; the rate crossing ``e`` is the publication rate times the
union fraction of bits needed on that side.  Both objectives are
computed for every candidate broker with two tree passes (rerooting),
so relocating P publishers over B brokers costs O(P·B) rather than
O(P·B²).

This module is a faithful re-implementation of GRAPE's *placement
decision* on the simulated overlay; the original's sampling machinery
(trace collection at brokers) is subsumed by the bit-vector profiles
that Phase 1 already collects — the same information GRAPE gathers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.bitvector import BitVector
from repro.core.deployment import BrokerTree
from repro.core.profiles import PublisherDirectory, PublisherProfile
from repro.obs import recorder as obs


@dataclass
class PlacementDecision:
    """Where one publisher should attach, with its objective scores."""

    adv_id: str
    broker_id: str
    load_score: float
    delay_score: float


class GrapeRelocator:
    """Publisher placement on a finished broker tree.

    Parameters
    ----------
    objective:
        ``"load"`` minimizes total broker message rate; ``"delay"``
        minimizes the delivery-weighted average hop distance.
    priority:
        Weight in [0, 1] given to the primary objective when mixing the
        two normalized scores (GRAPE's P%).  ``priority=1.0`` uses the
        primary objective alone.
    """

    def __init__(self, objective: str = "load", priority: float = 1.0):
        if objective not in ("load", "delay"):
            raise ValueError(f"objective must be 'load' or 'delay', got {objective!r}")
        if not 0.0 <= priority <= 1.0:
            raise ValueError(f"priority must be within [0, 1], got {priority}")
        self.objective = objective
        self.priority = priority

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def place_publishers(
        self, tree: BrokerTree, directory: PublisherDirectory
    ) -> Dict[str, str]:
        """adv_id → broker_id for every publisher in the directory."""
        with obs.span("phase3.grape", publishers=len(directory)):
            placement: Dict[str, str] = {}
            for adv_id, publisher in directory.items():
                decision = self.place_one(tree, adv_id, publisher)
                placement[adv_id] = decision.broker_id
            return placement

    def place_one(
        self, tree: BrokerTree, adv_id: str, publisher: PublisherProfile
    ) -> PlacementDecision:
        """Choose the attachment broker for one publisher."""
        needs = self._broker_needs(tree, adv_id, publisher)
        if not any(fraction > 0 for fraction, _ in needs.values()):
            # Nobody wants this publisher's traffic: park it at the root
            # where it costs a single matching operation per message.
            return PlacementDecision(adv_id, tree.root, 0.0, 0.0)
        load = self._load_scores(tree, publisher, needs)
        delay = self._delay_scores(tree, publisher, needs)
        brokers = tree.brokers
        max_load = max(load.values()) or 1.0
        max_delay = max(delay.values()) or 1.0
        if self.objective == "load":
            primary, secondary = load, delay
            primary_max, secondary_max = max_load, max_delay
        else:
            primary, secondary = delay, load
            primary_max, secondary_max = max_delay, max_load

        def score(broker_id: str) -> Tuple[float, str]:
            mixed = (
                self.priority * primary[broker_id] / primary_max
                + (1.0 - self.priority) * secondary[broker_id] / secondary_max
            )
            return (mixed, broker_id)

        best = min(brokers, key=score)
        return PlacementDecision(adv_id, best, load[best], delay[best])

    # ------------------------------------------------------------------
    # Per-broker demand for one publisher
    # ------------------------------------------------------------------
    @staticmethod
    def _broker_needs(
        tree: BrokerTree, adv_id: str, publisher: PublisherProfile
    ) -> Dict[str, Tuple[float, float]]:
        """broker_id → (union fraction needed, delivery rate) for ``adv_id``.

        The union fraction drives forwarding load (a broker receives
        each needed publication once); the delivery rate — the *sum* of
        its subscriptions' fractions — weighs the delay objective, since
        every matched subscription is a separate delivery.
        """
        needs: Dict[str, Tuple[float, float]] = {}
        for broker_id in tree.brokers:
            union_vector: Optional[BitVector] = None
            delivery = 0.0
            for unit in tree.broker_units.get(broker_id, ()):  # real units only
                if unit.kind != "subscription":
                    continue
                for record in unit.members:
                    vector = record.profile.vector(adv_id)
                    if vector is None or not vector:
                        continue
                    window = max(
                        1, min(vector.capacity, publisher.last_message_id - vector.first_id + 1)
                    )
                    delivery += min(1.0, vector.cardinality / window) * publisher.publication_rate
                    union_vector = (
                        vector.copy() if union_vector is None else union_vector.union(vector)
                    )
            if union_vector is None:
                needs[broker_id] = (0.0, 0.0)
            else:
                window = max(
                    1,
                    min(
                        union_vector.capacity,
                        publisher.last_message_id - union_vector.first_id + 1,
                    ),
                )
                fraction = min(1.0, union_vector.cardinality / window)
                needs[broker_id] = (fraction, delivery)
        return needs

    # ------------------------------------------------------------------
    # Load objective (total forwarding rate) via rerooting
    # ------------------------------------------------------------------
    def _load_scores(
        self,
        tree: BrokerTree,
        publisher: PublisherProfile,
        needs: Dict[str, Tuple[float, float]],
    ) -> Dict[str, float]:
        """Total msg/s crossing tree edges if the publisher sat at v.

        For edge (parent, child): traffic toward the child side is the
        union fraction of everything needed in the child's subtree;
        traffic toward the parent side is the union needed in the rest
        of the tree.  ``load(v) = Σ_down(c) over all c  +  Σ over the
        path root→v of (up(c) − down(c))`` — one O(B) pass plus O(depth)
        per candidate.
        """
        order = self._topo_order(tree)
        down_union: Dict[str, Optional[BitVector]] = {}
        for broker_id in reversed(order):  # leaves first
            union = self._need_vector(tree, broker_id, publisher.adv_id)
            for child in tree.children(broker_id):
                child_union = down_union[child]
                if child_union is not None:
                    union = child_union.copy() if union is None else union.union(child_union)
            down_union[broker_id] = union
        up_union: Dict[str, Optional[BitVector]] = {tree.root: None}
        for broker_id in order:  # root first
            kids = tree.children(broker_id)
            base = self._need_vector(tree, broker_id, publisher.adv_id)
            parent_up = up_union[broker_id]
            if parent_up is not None:
                base = parent_up.copy() if base is None else base.union(parent_up)
            for child in kids:
                union = base.copy() if base is not None else None
                for sibling in kids:
                    if sibling == child:
                        continue
                    sibling_union = down_union[sibling]
                    if sibling_union is not None:
                        union = (
                            sibling_union.copy()
                            if union is None
                            else union.union(sibling_union)
                        )
                up_union[child] = union
        rate = publisher.publication_rate
        down_rate = {
            broker_id: self._vector_rate(vec, publisher) for broker_id, vec in down_union.items()
        }
        up_rate = {
            broker_id: self._vector_rate(vec, publisher) for broker_id, vec in up_union.items()
        }
        total_down = sum(down_rate[child] for _p, child in tree.edges())
        scores: Dict[str, float] = {}
        for broker_id in order:
            score = total_down
            for node in tree.path_to_root(broker_id):
                if node == tree.root:
                    break
                score += up_rate[node] - down_rate[node]
            scores[broker_id] = score
        return scores

    # ------------------------------------------------------------------
    # Delay objective (delivery-weighted distance) via rerooting
    # ------------------------------------------------------------------
    def _delay_scores(
        self,
        tree: BrokerTree,
        publisher: PublisherProfile,
        needs: Dict[str, Tuple[float, float]],
    ) -> Dict[str, float]:
        """Σ_d deliveries(d) · hops(v, d) for every candidate v."""
        order = self._topo_order(tree)
        weight = {broker_id: needs[broker_id][1] for broker_id in tree.brokers}
        total_weight = sum(weight.values())
        count_down: Dict[str, float] = {}
        dist_down: Dict[str, float] = {}
        for broker_id in reversed(order):
            count = weight[broker_id]
            dist = 0.0
            for child in tree.children(broker_id):
                count += count_down[child]
                dist += dist_down[child] + count_down[child]
            count_down[broker_id] = count
            dist_down[broker_id] = dist
        scores: Dict[str, float] = {tree.root: dist_down[tree.root]}
        for broker_id in order:
            for child in tree.children(broker_id):
                scores[child] = scores[broker_id] + total_weight - 2.0 * count_down[child]
        return scores

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _topo_order(tree: BrokerTree) -> List[str]:
        """Root-first order with children after their parents."""
        order: List[str] = []
        stack = [tree.root]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(tree.children(node))
        return order

    @staticmethod
    def _need_vector(tree: BrokerTree, broker_id: str, adv_id: str) -> Optional[BitVector]:
        union: Optional[BitVector] = None
        for unit in tree.broker_units.get(broker_id, ()):
            if unit.kind != "subscription":
                continue
            vector = unit.profile.vector(adv_id)
            if vector is None or not vector:
                continue
            union = vector.copy() if union is None else union.union(vector)
        return union

    @staticmethod
    def _vector_rate(vector: Optional[BitVector], publisher: PublisherProfile) -> float:
        if vector is None or not vector:
            return 0.0
        window = max(
            1, min(vector.capacity, publisher.last_message_id - vector.first_id + 1)
        )
        return min(1.0, vector.cardinality / window) * publisher.publication_rate
