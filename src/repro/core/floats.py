"""Float tolerance helpers for unit-bearing quantities.

Capacity, bandwidth, and rate values are sums of float estimates, so
exact ``==``/``!=`` comparisons on them are bugs waiting to happen —
the *reprolint* ``float-equality`` rule bans them.  These helpers are
the sanctioned replacement.

This module sits below :mod:`repro.core.profiles` in the import graph
(it imports nothing) so that every core module — including profiles
itself — can use the helpers without cycles.  Most callers should
import them from :mod:`repro.core.units`, which re-exports them.
"""

from __future__ import annotations

#: Slack used in floating-point capacity comparisons.
EPSILON = 1e-9


def approx_eq(left: float, right: float, tolerance: float = EPSILON) -> bool:
    """Whether two float quantities agree within ``tolerance``."""
    return abs(left - right) <= tolerance


def approx_zero(value: float, tolerance: float = EPSILON) -> bool:
    """Whether a float quantity is zero within ``tolerance``."""
    return abs(value) <= tolerance


def approx_le(left: float, right: float, tolerance: float = EPSILON) -> bool:
    """``left <= right`` with ``tolerance`` slack (capacity feasibility)."""
    return left <= right + tolerance


def approx_ge(left: float, right: float, tolerance: float = EPSILON) -> bool:
    """``left >= right`` with ``tolerance`` slack."""
    return left >= right - tolerance
