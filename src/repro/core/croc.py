"""CROC — Coordinator for Reconfiguring the Overlay and Clients.

CROC is an external publish/subscribe client (paper §III).  It connects
to any broker of the running overlay, floods a Broker Information
Request, and collects the aggregated Broker Information Answers from
every broker (Phase 1).  With the reported capacities and profiles it
runs the subscription allocation algorithm (Phase 2), the recursive
overlay construction (Phase 3), and GRAPE publisher placement, then
orchestrates the reconfiguration by handing the resulting deployment to
the network.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.capacity import AllocationResult, BrokerSpec
from repro.core.deployment import Deployment
from repro.core.grape import GrapeRelocator
from repro.core.overlay_builder import OverlayBuilder
from repro.core.profiles import PublisherProfile
from repro.core.units import SubscriptionRecord, units_from_records
from repro.pubsub.message import (
    BrokerInformationAnswer,
    BrokerInformationRequest,
    BrokerReport,
    CONTROL_MESSAGE_KB,
)

_croc_ids = itertools.count()


class ReconfigurationError(Exception):
    """Raised when CROC cannot produce a valid deployment."""


@dataclass
class GatherResult:
    """Everything Phase 1 learned about the running system."""

    broker_pool: List[BrokerSpec]
    records: List[SubscriptionRecord]
    directory: Dict[str, PublisherProfile]
    reports: Dict[str, BrokerReport] = field(default_factory=dict)

    @property
    def subscription_count(self) -> int:
        return len(self.records)


@dataclass
class ReconfigurationReport:
    """Outcome and cost accounting of one CROC run."""

    approach: str
    deployment: Deployment
    allocation: AllocationResult
    gather: GatherResult
    computation_seconds: float

    @property
    def allocated_brokers(self) -> int:
        return len(self.deployment.tree)


class Croc:
    """The coordinator client.

    Parameters
    ----------
    allocator_factory:
        Zero-argument callable producing a fresh Phase-2 allocator
        (FBF, BIN PACKING, or CRAM).  The same factory drives Phase 3,
        keeping the allocation scheme consistent across both phases.
    grape:
        Publisher relocation policy applied to the finished tree.
    overlay_builder:
        Optional pre-configured Phase-3 builder (ablation studies);
        built from ``allocator_factory`` with all optimizations on when
        omitted.
    """

    def __init__(
        self,
        allocator_factory: Callable[[], object],
        grape: Optional[GrapeRelocator] = None,
        overlay_builder: Optional[OverlayBuilder] = None,
        approach: Optional[str] = None,
    ):
        self._allocator_factory = allocator_factory
        self.grape = grape if grape is not None else GrapeRelocator(objective="load")
        self.overlay_builder = (
            overlay_builder
            if overlay_builder is not None
            else OverlayBuilder(allocator_factory)
        )
        self.approach = approach or getattr(allocator_factory(), "name", "croc")
        self.last_allocator = None

    # ------------------------------------------------------------------
    # Phase 1: information gathering over the live overlay
    # ------------------------------------------------------------------
    def gather(self, network, via_broker: Optional[str] = None,
               timeout: float = 120.0, include_standby: bool = True) -> GatherResult:
        """Flood a BIR from one broker and await the aggregated BIA.

        ``include_standby`` adds the specs of brokers the coordinator
        knows about but that are not part of the current overlay (they
        were deallocated by an earlier reconfiguration and answer no
        BIR).  Without them, a consolidated system could never grow
        back when the workload rises — the data-center inventory stays
        in the pool even while powered down.
        """
        brokers = network.active_brokers
        if not brokers:
            raise ReconfigurationError("no active brokers to gather from")
        entry = via_broker if via_broker is not None else brokers[0]
        croc_id = f"croc-{next(_croc_ids)}"
        inbox: List[BrokerInformationAnswer] = []
        network.register_control_client(croc_id, inbox.append)
        network.brokers[entry].attach_client(croc_id)
        request = BrokerInformationRequest()
        network.client_send(croc_id, entry, request, CONTROL_MESSAGE_KB)
        deadline = network.sim.now + timeout
        while not inbox and network.sim.now < deadline and network.sim.pending:
            network.sim.run(until=min(network.sim.now + 0.05, deadline))
        network.brokers[entry].detach_client(croc_id)
        if not inbox:
            raise ReconfigurationError(
                f"BIR {request.request_id} received no aggregated BIA"
            )
        answer = inbox[0]
        gathered = self._assemble(answer.reports)
        if include_standby:
            reported = {spec.broker_id for spec in gathered.broker_pool}
            for broker_id in sorted(network.brokers):
                if broker_id not in reported:
                    gathered.broker_pool.append(network.brokers[broker_id].spec)
        return gathered

    @staticmethod
    def _assemble(reports: Dict[str, BrokerReport]) -> GatherResult:
        """Merge per-broker reports and synchronize all profiles."""
        directory: Dict[str, PublisherProfile] = {}
        for report in reports.values():
            for profile in report.publishers:
                directory[profile.adv_id] = profile
        records: List[SubscriptionRecord] = []
        for broker_id in sorted(reports):
            report = reports[broker_id]
            for record in report.subscriptions:
                record.profile.synchronize(directory)
                records.append(record)
        pool = [reports[broker_id].spec for broker_id in sorted(reports)]
        return GatherResult(
            broker_pool=pool, records=records, directory=directory, reports=dict(reports)
        )

    # ------------------------------------------------------------------
    # Phases 2 + 3 + GRAPE (pure computation, no messaging)
    # ------------------------------------------------------------------
    def plan(self, gathered: GatherResult) -> ReconfigurationReport:
        """Compute a new deployment from gathered information."""
        started = time.perf_counter()
        units = units_from_records(gathered.records, gathered.directory)
        allocator = self._allocator_factory()
        self.last_allocator = allocator
        allocation = allocator.allocate(units, gathered.broker_pool, gathered.directory)
        if not allocation.success:
            raise ReconfigurationError(
                f"{self.approach}: subscription pool does not fit the broker pool "
                f"(failed at unit {allocation.failed_unit!r})"
            )
        tree = self.overlay_builder.build(
            allocation, gathered.broker_pool, gathered.directory
        )
        publisher_placement = self.grape.place_publishers(tree, gathered.directory)
        elapsed = time.perf_counter() - started
        deployment = Deployment(
            tree=tree,
            subscription_placement=tree.subscription_placement(),
            publisher_placement=publisher_placement,
            approach=self.approach,
        )
        return ReconfigurationReport(
            approach=self.approach,
            deployment=deployment,
            allocation=allocation,
            gather=gathered,
            computation_seconds=elapsed,
        )

    # ------------------------------------------------------------------
    # Full pipeline
    # ------------------------------------------------------------------
    def reconfigure(self, network, settle_time: float = 2.0) -> ReconfigurationReport:
        """Gather → plan → execute on the live network."""
        gathered = self.gather(network)
        report = self.plan(gathered)
        network.apply_deployment(report.deployment)
        network.run(settle_time)
        return report
