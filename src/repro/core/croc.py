"""CROC — Coordinator for Reconfiguring the Overlay and Clients.

CROC is an external publish/subscribe client (paper §III).  It connects
to any broker of the running overlay, floods a Broker Information
Request, and collects the aggregated Broker Information Answers from
every broker (Phase 1).  With the reported capacities and profiles it
runs the subscription allocation algorithm (Phase 2), the recursive
overlay construction (Phase 3), and GRAPE publisher placement, then
orchestrates the reconfiguration by handing the resulting deployment to
the network.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.capacity import AllocationResult, BrokerSpec
from repro.core.deployment import Deployment
from repro.core.grape import GrapeRelocator
from repro.core.overlay_builder import OverlayBuilder
from repro.core.profiles import PublisherProfile
from repro.core.units import SubscriptionRecord, units_from_records
from repro.core.protocol import (
    BrokerInformationAnswer,
    BrokerInformationRequest,
    BrokerReport,
    CONTROL_MESSAGE_KB,
)
from repro.obs import collect as obs_collect
from repro.obs import recorder as obs

_croc_ids = itertools.count()


class ReconfigurationError(Exception):
    """Raised when CROC cannot produce a valid deployment."""


@dataclass
class GatherResult:
    """Everything Phase 1 learned about the running system.

    ``silent_brokers`` are active brokers that answered no BIR this
    round (crashed, or unreachable behind a crashed broker) — their
    specs are excluded from the plannable pool.  ``cached_brokers`` is
    the subset of silent brokers whose last-known reports were
    substituted from the coordinator's cache, so their subscriptions
    can be re-homed onto live brokers (a *degraded* plan).
    """

    broker_pool: List[BrokerSpec]
    records: List[SubscriptionRecord]
    directory: Dict[str, PublisherProfile]
    reports: Dict[str, BrokerReport] = field(default_factory=dict)
    silent_brokers: List[str] = field(default_factory=list)
    cached_brokers: List[str] = field(default_factory=list)
    attempts: int = 1

    @property
    def subscription_count(self) -> int:
        return len(self.records)

    @property
    def degraded(self) -> bool:
        """True when the plan is built from incomplete information."""
        return bool(self.silent_brokers)


@dataclass
class ReconfigurationReport:
    """Outcome and cost accounting of one CROC run.

    ``applied`` is False when the reconfiguration was aborted or rolled
    back because a target broker died around the apply;
    ``rollback_reason`` then says why.
    """

    approach: str
    deployment: Deployment
    allocation: AllocationResult
    gather: GatherResult
    computation_seconds: float
    applied: bool = True
    rollback_reason: str = ""

    @property
    def allocated_brokers(self) -> int:
        return len(self.deployment.tree)


class Croc:
    """The coordinator client.

    Parameters
    ----------
    allocator_factory:
        Zero-argument callable producing a fresh Phase-2 allocator
        (FBF, BIN PACKING, or CRAM).  The same factory drives Phase 3,
        keeping the allocation scheme consistent across both phases.
    grape:
        Publisher relocation policy applied to the finished tree.
    overlay_builder:
        Optional pre-configured Phase-3 builder (ablation studies);
        built from ``allocator_factory`` with all optimizations on when
        omitted.
    """

    def __init__(
        self,
        allocator_factory: Callable[[], object],
        grape: Optional[GrapeRelocator] = None,
        overlay_builder: Optional[OverlayBuilder] = None,
        approach: Optional[str] = None,
        gather_timeout: float = 30.0,
        gather_retries: int = 2,
        gather_backoff: float = 2.0,
    ):
        self._allocator_factory = allocator_factory
        self.grape = grape if grape is not None else GrapeRelocator(objective="load")
        self.overlay_builder = (
            overlay_builder
            if overlay_builder is not None
            else OverlayBuilder(allocator_factory)
        )
        self.approach = approach or getattr(allocator_factory(), "name", "croc")
        self.last_allocator = None
        self.gather_timeout = gather_timeout
        self.gather_retries = gather_retries
        self.gather_backoff = gather_backoff
        #: Last-known report per broker, feeding partial-gather plans.
        self._report_cache: Dict[str, BrokerReport] = {}

    # ------------------------------------------------------------------
    # Phase 1: information gathering over the live overlay
    # ------------------------------------------------------------------
    def gather(self, network, via_broker: Optional[str] = None,
               timeout: Optional[float] = None, include_standby: bool = True,
               retries: Optional[int] = None, backoff: Optional[float] = None,
               use_cache: bool = True) -> GatherResult:
        """Flood a BIR from one broker and await the aggregated BIA
        (observability wrapper; see :meth:`_gather` for the protocol).
        """
        with obs.span("phase1.gather") as gather_span:
            gathered = self._gather(
                network, via_broker=via_broker, timeout=timeout,
                include_standby=include_standby, retries=retries,
                backoff=backoff, use_cache=use_cache,
            )
            gather_span.set(
                attempts=gathered.attempts,
                silent_brokers=len(gathered.silent_brokers),
                records=len(gathered.records),
            )
            return gathered

    def _gather(self, network, via_broker: Optional[str] = None,
                timeout: Optional[float] = None, include_standby: bool = True,
                retries: Optional[int] = None, backoff: Optional[float] = None,
                use_cache: bool = True) -> GatherResult:
        """Flood a BIR from one broker and await the aggregated BIA.

        ``include_standby`` adds the specs of brokers the coordinator
        knows about but that are not part of the current overlay (they
        were deallocated by an earlier reconfiguration and answer no
        BIR).  Without them, a consolidated system could never grow
        back when the workload rises — the data-center inventory stays
        in the pool even while powered down.

        Robustness (paper-external, see DESIGN.md):

        * Each attempt waits at most ``timeout`` virtual seconds; on
          silence the coordinator retries up to ``retries`` more times
          with the wait stretched by ``backoff`` per attempt, rotating
          the entry broker (the usual cause of total silence is a dead
          entry).  Total silence after all attempts raises
          :class:`ReconfigurationError`.
        * Active brokers missing from the aggregated answer are
          *silent*: their specs are excluded from the plannable pool,
          and when ``use_cache`` their last-known reports are
          substituted so their subscriptions re-home onto live brokers
          — a *degraded* plan.
        """
        brokers = network.active_brokers
        if not brokers:
            raise ReconfigurationError("no active brokers to gather from")
        timeout = self.gather_timeout if timeout is None else timeout
        retries = self.gather_retries if retries is None else retries
        backoff = self.gather_backoff if backoff is None else backoff
        answer: Optional[BrokerInformationAnswer] = None
        attempts = 0
        for attempt in range(retries + 1):
            attempts = attempt + 1
            entry = via_broker if via_broker is not None else brokers[attempt % len(brokers)]
            wait = timeout * backoff ** attempt
            answer = self._flood_bir(network, entry, wait)
            if answer is not None:
                break
            if attempt < retries:
                network.metrics.on_gather_retry()
        if answer is None:
            raise ReconfigurationError(
                f"no aggregated BIA from any entry broker after {attempts} attempt(s)"
            )
        reports = dict(answer.reports)
        silent = sorted(
            broker_id for broker_id in brokers if broker_id not in reports
        )
        cached: List[str] = []
        if use_cache:
            for broker_id in silent:
                cached_report = self._report_cache.get(broker_id)
                if cached_report is not None:
                    reports[broker_id] = cached_report
                    cached.append(broker_id)
        self._report_cache.update(answer.reports)
        gathered = self._assemble(reports)
        if silent:
            # Never plan onto a silent broker — keep its cached
            # subscription records (for re-homing) but drop its spec.
            silent_set = set(silent)
            gathered.broker_pool = [
                spec for spec in gathered.broker_pool
                if spec.broker_id not in silent_set
            ]
            network.metrics.on_degraded_plan()
        gathered.silent_brokers = silent
        gathered.cached_brokers = cached
        gathered.attempts = attempts
        if include_standby:
            reported = {spec.broker_id for spec in gathered.broker_pool}
            skip = set(silent)
            for broker_id in sorted(network.brokers):
                if broker_id not in reported and broker_id not in skip:
                    gathered.broker_pool.append(network.brokers[broker_id].spec)
        return gathered

    def _flood_bir(self, network, entry: str,
                   wait: float) -> Optional[BrokerInformationAnswer]:
        """One gather attempt: flood a BIR via ``entry``, await the BIA."""
        croc_id = f"croc-{next(_croc_ids)}"
        inbox: List[BrokerInformationAnswer] = []
        network.register_control_client(croc_id, inbox.append)
        network.brokers[entry].attach_client(croc_id)
        request = BrokerInformationRequest()
        network.client_send(croc_id, entry, request, CONTROL_MESSAGE_KB)
        deadline = network.sim.now + wait
        while not inbox and network.sim.now < deadline and network.sim.pending:
            network.sim.run(until=min(network.sim.now + 0.05, deadline))
        network.brokers[entry].detach_client(croc_id)
        network.unregister_control_client(croc_id)
        return inbox[0] if inbox else None

    @staticmethod
    def _assemble(reports: Dict[str, BrokerReport]) -> GatherResult:
        """Merge per-broker reports and synchronize all profiles."""
        directory: Dict[str, PublisherProfile] = {}
        for report in reports.values():
            for profile in report.publishers:
                directory[profile.adv_id] = profile
        records: List[SubscriptionRecord] = []
        for broker_id in sorted(reports):
            report = reports[broker_id]
            for record in report.subscriptions:
                record.profile.synchronize(directory)
                records.append(record)
        pool = [reports[broker_id].spec for broker_id in sorted(reports)]
        return GatherResult(
            broker_pool=pool, records=records, directory=directory, reports=dict(reports)
        )

    # ------------------------------------------------------------------
    # Phases 2 + 3 + GRAPE (pure computation, no messaging)
    # ------------------------------------------------------------------
    def plan(self, gathered: GatherResult) -> ReconfigurationReport:
        """Compute a new deployment from gathered information."""
        started = time.perf_counter()
        units = units_from_records(gathered.records, gathered.directory)
        allocator = self._allocator_factory()
        self.last_allocator = allocator
        with obs.span("phase2.allocate", allocator=allocator.name,
                      units=len(units)) as allocate_span:
            allocation = allocator.allocate(
                units, gathered.broker_pool, gathered.directory
            )
            allocate_span.set(success=allocation.success)
            obs_collect.add_allocator(allocator)
        if not allocation.success:
            raise ReconfigurationError(
                f"{self.approach}: subscription pool does not fit the broker pool "
                f"(failed at unit {allocation.failed_unit!r})"
            )
        with obs.span("phase3.overlay"):
            tree = self.overlay_builder.build(
                allocation, gathered.broker_pool, gathered.directory
            )
        publisher_placement = self.grape.place_publishers(tree, gathered.directory)
        elapsed = time.perf_counter() - started
        deployment = Deployment(
            tree=tree,
            subscription_placement=tree.subscription_placement(),
            publisher_placement=publisher_placement,
            approach=self.approach,
        )
        return ReconfigurationReport(
            approach=self.approach,
            deployment=deployment,
            allocation=allocation,
            gather=gathered,
            computation_seconds=elapsed,
        )

    # ------------------------------------------------------------------
    # Full pipeline
    # ------------------------------------------------------------------
    def reconfigure(self, network, settle_time: float = 2.0) -> ReconfigurationReport:
        """Gather → plan → execute on the live network.

        If a broker the plan depends on dies before the apply, the plan
        is abandoned (the running deployment stays untouched).  If one
        dies *during* the apply/settle, the network is rolled back to
        the pre-plan deployment — a half-moved overlay is worse than a
        suboptimal one.  Either way ``report.applied`` is False and
        ``report.rollback_reason`` says what happened.
        """
        with obs.span("reconfigure", approach=self.approach) as outer_span:
            gathered = self.gather(network)
            report = self.plan(gathered)
            previous = network.last_deployment
            dead = self._dead_targets(network, report.deployment)
            if dead:
                report.applied = False
                report.rollback_reason = (
                    f"target broker(s) {dead} down before apply; plan abandoned"
                )
                network.metrics.on_rollback()
                outer_span.set(applied=False, abandoned=True)
                return report
            with obs.span("phase3.apply"):
                network.apply_deployment(report.deployment)
                network.run(settle_time)
            dead = self._dead_targets(network, report.deployment)
            if dead:
                report.applied = False
                report.rollback_reason = (
                    f"target broker(s) {dead} died during apply; rolled back"
                )
                network.metrics.on_rollback()
                with obs.span("phase3.rollback"):
                    if previous is not None:
                        network.apply_deployment(previous)
                        network.run(settle_time)
            outer_span.set(applied=report.applied)
            return report

    @staticmethod
    def _dead_targets(network, deployment: Deployment) -> List[str]:
        """Brokers of the planned tree currently held down by faults."""
        return sorted(
            broker_id
            for broker_id in deployment.tree.brokers
            if network.broker_is_down(broker_id)
        )
