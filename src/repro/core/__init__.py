"""The paper's primary contribution: green resource allocation.

Phase 1 — :mod:`repro.core.bitvector`, :mod:`repro.core.profiles`,
:mod:`repro.core.croc` (information gathering).
Phase 2 — :mod:`repro.core.fbf`, :mod:`repro.core.binpacking`,
:mod:`repro.core.cram` plus the :mod:`repro.core.closeness` metrics,
:mod:`repro.core.gif` grouping and the :mod:`repro.core.poset`.
Phase 3 — :mod:`repro.core.overlay_builder`, followed by
:mod:`repro.core.grape` publisher relocation.
Related and baseline approaches — :mod:`repro.core.pairwise`,
:mod:`repro.core.baselines`.
"""

from __future__ import annotations

from repro.core import allocators
from repro.core.allocators import (
    KNOWN_CAPABILITIES,
    AllocatorSpec,
    get_allocator,
    names_with,
    register_allocator,
    register_spec,
    registered_allocators,
    supports,
)
from repro.core.bitvector import DEFAULT_CAPACITY, BitVector
from repro.core.config import RunConfig
from repro.core.energy import (
    BrokerEnergy,
    EnergyAccountant,
    EnergyReport,
    EnergySpec,
    WindowUsage,
    account_window,
    combined_report,
)
from repro.core.online import (
    STRATEGIES,
    Migration,
    MigrationPlan,
    OnlineAllocator,
    OnlineSpec,
    make_strategy,
)
from repro.core.binpacking import BinPackingAllocator
from repro.core.baselines import automatic_deployment, manual_deployment
from repro.core.capacity import (
    AllocationResult,
    BrokerBin,
    BrokerSpec,
    MatchingDelayFunction,
)
from repro.core.closeness import (
    METRIC_NAMES,
    ClosenessMetric,
    intersect_metric,
    ios_metric,
    iou_metric,
    make_metric,
    xor_metric,
)
from repro.core.cram import CramAllocator, CramStats
from repro.core.croc import Croc, GatherResult, ReconfigurationError, ReconfigurationReport
from repro.core.deployment import BrokerTree, Deployment
from repro.core.fbf import FbfAllocator
from repro.core.gif import Gif, build_gifs, gif_reduction_ratio
from repro.core.grape import GrapeRelocator, PlacementDecision
from repro.core.overlay_builder import OverlayBuilder, OverlayBuildStats
from repro.core.pairwise import PairwiseKAllocator, PairwiseNAllocator, pairwise_cluster
from repro.core.poset import Poset, PosetNode
from repro.core.profiles import PublisherProfile, SubscriptionProfile, merge_profiles
from repro.core.relations import Relation, relationship
from repro.core.units import (
    EPSILON,
    AllocationUnit,
    SubscriptionRecord,
    approx_eq,
    approx_ge,
    approx_le,
    approx_zero,
    units_from_records,
)
from repro.core.plan_io import (
    deployment_from_dict,
    deployment_to_dict,
    load_deployment,
    save_deployment,
)
from repro.core.validation import (
    BrokerLoad,
    ValidationReport,
    Violation,
    validate_deployment,
)

__all__ = [
    "allocators",
    "AllocatorSpec",
    "KNOWN_CAPABILITIES",
    "get_allocator",
    "names_with",
    "register_allocator",
    "register_spec",
    "registered_allocators",
    "supports",
    "RunConfig",
    "BrokerEnergy",
    "EnergyAccountant",
    "EnergyReport",
    "EnergySpec",
    "WindowUsage",
    "account_window",
    "combined_report",
    "STRATEGIES",
    "Migration",
    "MigrationPlan",
    "OnlineAllocator",
    "OnlineSpec",
    "make_strategy",
    "DEFAULT_CAPACITY",
    "BitVector",
    "BinPackingAllocator",
    "automatic_deployment",
    "manual_deployment",
    "AllocationResult",
    "BrokerBin",
    "BrokerSpec",
    "MatchingDelayFunction",
    "METRIC_NAMES",
    "ClosenessMetric",
    "intersect_metric",
    "ios_metric",
    "iou_metric",
    "make_metric",
    "xor_metric",
    "CramAllocator",
    "CramStats",
    "Croc",
    "GatherResult",
    "ReconfigurationError",
    "ReconfigurationReport",
    "BrokerTree",
    "Deployment",
    "FbfAllocator",
    "Gif",
    "build_gifs",
    "gif_reduction_ratio",
    "GrapeRelocator",
    "PlacementDecision",
    "OverlayBuilder",
    "OverlayBuildStats",
    "PairwiseKAllocator",
    "PairwiseNAllocator",
    "pairwise_cluster",
    "Poset",
    "PosetNode",
    "PublisherProfile",
    "SubscriptionProfile",
    "merge_profiles",
    "Relation",
    "relationship",
    "EPSILON",
    "approx_eq",
    "approx_ge",
    "approx_le",
    "approx_zero",
    "AllocationUnit",
    "SubscriptionRecord",
    "units_from_records",
    "BrokerLoad",
    "ValidationReport",
    "Violation",
    "validate_deployment",
    "deployment_from_dict",
    "deployment_to_dict",
    "load_deployment",
    "save_deployment",
]
