"""Shared popcount primitives for every bit-counting path.

Three call sites used to re-implement the same aligned-AND/OR/XOR
popcount dance: :class:`~repro.core.bitvector.BitVector`'s cardinality
methods, the fused kernel's residual fallback, and (new) the columnar
store's pure-Python backend.  They all route through this module now,
so the counting semantics live in exactly one place.

Everything here operates on plain non-negative ints (packed bit
patterns); window alignment stays the callers' job.
"""

from __future__ import annotations

from typing import List, Tuple


def popcount(bits: int) -> int:
    """Number of set bits (thin, inlinable alias of ``int.bit_count``)."""
    return bits.bit_count()


def fused_counts(mine: int, theirs: int) -> Tuple[int, int, int]:
    """``(|∩|, |∪|, |⊕|)`` of two aligned bit patterns.

    The XOR count is derived (``|∪| - |∩|``) rather than popcounted a
    third time — one fewer big-int traversal, same value.
    """
    intersect = (mine & theirs).bit_count()
    union = (mine | theirs).bit_count()
    return intersect, union, union - intersect


def split_words(bits: int, words: int) -> List[int]:
    """Split a packed pattern into ``words`` little-endian 64-bit words.

    Word ``j`` holds bits ``64*j .. 64*j+63``; the columnar store's
    backends share this layout so numpy and pure-Python rows are
    byte-identical.
    """
    if words <= 0:
        return []
    mask = (1 << 64) - 1
    return [(bits >> (64 * j)) & mask for j in range(words)]


def join_words(words: List[int]) -> int:
    """Inverse of :func:`split_words`."""
    bits = 0
    for j, word in enumerate(words):
        bits |= word << (64 * j)
    return bits
