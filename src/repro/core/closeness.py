"""Closeness metrics between subscription profiles (paper Section IV-C).

Four metrics measure how profitable it is to cluster two subscriptions
``S1`` and ``S2`` (bit-vector profiles):

``INTERSECT``
    ``|S1 ∩ S2|`` — rewards shared traffic but ignores the non-shared
    traffic a merge would drag along.
``XOR``
    ``1 / |S1 ⊕ S2|`` with a capped maximum to handle division by zero.
    Derived from Gryphon's metric; penalizes non-shared traffic but
    cannot distinguish empty from non-empty relationships, so it cannot
    be search-pruned and may cluster disjoint subscriptions.
``IOS``
    ``|S1 ∩ S2|² / (|S1| + |S2|)`` — intersect-over-sum.
``IOU``
    ``|S1 ∩ S2|² / |S1 ∪ S2|`` — intersect-over-union.

IOS and IOU are the paper's own metrics: they are zero exactly for
empty relationships (enabling poset pruning), account for both shared
and dragged-along traffic, and square the intersection so that
high-traffic subscriptions — whose placement matters most — cluster
first.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.profiles import SubscriptionProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (kernel imports us)
    from repro.core.kernel import ClosenessKernel

#: Cap applied to the XOR metric when |S1 xor S2| == 0 (paper: "a capped
#: maximum value to handle division by zero").  Any value larger than 1
#: works since 1/|xor| <= 1 otherwise; we keep a wide margin so equal
#: profiles always sort first.
XOR_MAX = 1.0e9

MetricFunction = Callable[[SubscriptionProfile, SubscriptionProfile], float]


def intersect_metric(first: SubscriptionProfile, second: SubscriptionProfile) -> float:
    """Cardinality of the intersection."""
    return float(first.intersection_cardinality(second))


def xor_metric(first: SubscriptionProfile, second: SubscriptionProfile) -> float:
    """Inverse of the XOR cardinality, capped at :data:`XOR_MAX`."""
    xor = first.xor_cardinality(second)
    if xor == 0:
        return XOR_MAX
    return 1.0 / xor


def ios_metric(first: SubscriptionProfile, second: SubscriptionProfile) -> float:
    """Intersection squared over the sum of cardinalities."""
    intersect = first.intersection_cardinality(second)
    if intersect == 0:
        return 0.0
    denominator = first.cardinality + second.cardinality
    return intersect * intersect / denominator


def iou_metric(first: SubscriptionProfile, second: SubscriptionProfile) -> float:
    """Intersection squared over the cardinality of the union."""
    intersect = first.intersection_cardinality(second)
    if intersect == 0:
        return 0.0
    union = first.union_cardinality(second)
    return intersect * intersect / union


class ClosenessMetric:
    """A named closeness metric plus its search properties.

    ``prunable`` means the metric is exactly zero for profiles with an
    empty relationship, which lets the poset search skip entire
    subtrees (paper optimization 2).  The XOR metric is not prunable —
    the paper measures it at ≥75% longer computation time because of
    this — and our benchmark harness reproduces that comparison.
    """

    def __init__(self, name: str, function: MetricFunction, prunable: bool):
        self.name = name
        self._function = function
        self.prunable = prunable
        self.evaluations = 0
        self._kernel: Optional["ClosenessKernel"] = None

    def __call__(self, first: SubscriptionProfile, second: SubscriptionProfile) -> float:
        self.evaluations += 1
        kernel = self._kernel
        if kernel is not None:
            return kernel.closeness(self.name, first, second)
        return self._function(first, second)

    # ------------------------------------------------------------------
    # Fused-kernel acceleration (drop-in: values and counters unchanged)
    # ------------------------------------------------------------------
    @property
    def kernel(self) -> Optional["ClosenessKernel"]:
        return self._kernel

    def attach_kernel(self, kernel: Optional["ClosenessKernel"]) -> None:
        """Route evaluations through a fused bit-plane kernel.

        The kernel produces bit-for-bit identical values (it falls back
        to the naive profile walk whenever a profile does not fit its
        packed layout), so attaching one only changes speed.  Pass
        ``None`` to detach.
        """
        self._kernel = kernel

    def closeness_row(
        self, first: SubscriptionProfile, others: Sequence[SubscriptionProfile]
    ) -> List[float]:
        """Batched one-vs-all closeness (CRAM partner search, pairwise).

        Counts one evaluation per pair, exactly like ``len(others)``
        individual calls.
        """
        self.evaluations += len(others)
        kernel = self._kernel
        if kernel is not None:
            return kernel.closeness_row(self.name, first, others)
        function = self._function
        return [function(first, other) for other in others]

    def reset_counter(self) -> None:
        """Zero the evaluation counter (used by the pruning benchmark)."""
        self.evaluations = 0

    def fresh(self) -> "ClosenessMetric":
        """A new instance with its own evaluation counter."""
        return ClosenessMetric(self.name, self._function, self.prunable)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClosenessMetric({self.name!r}, prunable={self.prunable})"


def make_metric(name: str) -> ClosenessMetric:
    """Build a fresh metric instance by name.

    Valid names: ``intersect``, ``xor``, ``ios``, ``iou``
    (case-insensitive).
    """
    try:
        function, prunable = _METRICS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown closeness metric {name!r}; expected one of {sorted(_METRICS)}"
        ) from None
    return ClosenessMetric(name.lower(), function, prunable)


_METRICS: Dict[str, Tuple[MetricFunction, bool]] = {
    "intersect": (intersect_metric, True),
    "xor": (xor_metric, False),
    "ios": (ios_metric, True),
    "iou": (iou_metric, True),
}

METRIC_NAMES = tuple(sorted(_METRICS))
