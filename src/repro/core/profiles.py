"""Subscription and publisher profiles (paper Section III-B).

A *subscription profile* holds one bit vector per publisher the
subscription has received traffic from.  A *publisher profile* carries
the publisher's advertisement ID, publication rate, bandwidth
consumption, and last message ID.  Together they let CROC estimate,
without any distributional assumption, the message rate and output
bandwidth a subscription will impose on whichever broker it is
assigned to.

The paper's estimation example is kept as a doctest: a subscription
with 10 of 100 bits set against a 50 msg/s, 50 kB/s publisher induces
5 msg/s and 5 kB/s.

>>> pub = PublisherProfile("AdvA", publication_rate=50.0, bandwidth=50.0,
...                        last_message_id=99)
>>> profile = SubscriptionProfile(capacity=100)
>>> for pub_id in range(10):
...     _ = profile.record("AdvA", pub_id)
>>> directory = {"AdvA": pub}
>>> round(profile.estimated_rate(directory), 6)
5.0
>>> round(profile.estimated_bandwidth(directory), 6)
5.0
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from repro.core.bitvector import DEFAULT_CAPACITY, BitVector

# Imported from the implementation module rather than repro.core.units
# (the usual import point) because units.py imports this module.
from repro.core.floats import approx_zero


@dataclass
class PublisherProfile:
    """Load description of one publisher (paper §III-B).

    Attributes
    ----------
    adv_id:
        Globally unique advertisement ID stamped into every publication;
        identifies the publisher of each message.
    publication_rate:
        Messages per second.
    bandwidth:
        Output bandwidth consumption in kB/s.
    last_message_id:
        ID of the most recent publication; used to synchronize the
        message-ID counters of all bit vectors for this publisher.
    """

    adv_id: str
    publication_rate: float
    bandwidth: float
    last_message_id: int = 0

    def __post_init__(self) -> None:
        if self.publication_rate < 0:
            raise ValueError("publication_rate must be non-negative")
        if self.bandwidth < 0:
            raise ValueError("bandwidth must be non-negative")

    @property
    def message_size(self) -> float:
        """Average message size in kB (bandwidth / rate)."""
        if approx_zero(self.publication_rate):
            return 0.0
        return self.bandwidth / self.publication_rate

    def record_publication(self, message_id: int, size_kb: Optional[float] = None) -> None:
        """Advance the last-seen message ID (monotonically)."""
        if message_id > self.last_message_id:
            self.last_message_id = message_id


PublisherDirectory = Mapping[str, PublisherProfile]


class SubscriptionProfile:
    """The set of bit vectors describing one subscription's traffic.

    One :class:`~repro.core.bitvector.BitVector` per publisher
    (advertisement ID) the subscription received publications from.
    """

    # ``__weakref__`` lets streaming tests observe profile lifetimes
    # (peak-liveness assertions) without keeping profiles alive; copyreg
    # excludes it from pickling, so records still ship to pool workers.
    __slots__ = ("_capacity", "_vectors", "_card", "_sig", "__weakref__")

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self._capacity = capacity
        self._vectors: Dict[str, BitVector] = {}
        self._card: Optional[int] = None
        self._sig: Optional[Tuple[Tuple[str, Tuple[int, int]], ...]] = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    def record(self, adv_id: str, pub_id: int) -> bool:
        """Record receipt of publication ``pub_id`` from ``adv_id``."""
        vector = self._vectors.get(adv_id)
        if vector is None:
            vector = BitVector(capacity=self._capacity)
            self._vectors[adv_id] = vector
        self._card = None
        self._sig = None
        return vector.set(pub_id)

    def synchronize(self, directory: PublisherDirectory) -> None:
        """Align every vector's window to its publisher's last message."""
        self._card = None
        self._sig = None
        for adv_id, vector in self._vectors.items():
            publisher = directory.get(adv_id)
            if publisher is not None:
                vector.synchronize(publisher.last_message_id)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def vector(self, adv_id: str) -> Optional[BitVector]:
        return self._vectors.get(adv_id)

    def adv_ids(self) -> Iterator[str]:
        return iter(self._vectors)

    def items(self) -> Iterator[Tuple[str, BitVector]]:
        return iter(self._vectors.items())

    def __len__(self) -> int:
        """Number of publishers this profile has traffic from."""
        return len(self._vectors)

    def __bool__(self) -> bool:
        return any(vector for vector in self._vectors.values())

    @property
    def cardinality(self) -> int:
        """Total set bits across all publishers (cached until mutation)."""
        if self._card is None:
            self._card = sum(vector.cardinality for vector in self._vectors.values())
        return self._card

    def copy(self) -> "SubscriptionProfile":
        clone = SubscriptionProfile(capacity=self._capacity)
        clone._vectors = {adv: vec.copy() for adv, vec in self._vectors.items()}
        clone._card = self._card
        clone._sig = self._sig
        return clone

    def adopt_vectors(self, vectors: Dict[str, BitVector]) -> None:
        """Replace the vector table wholesale (fused-kernel merges).

        The caller owns ``vectors`` and must not mutate it afterwards;
        insertion order becomes the profile's publisher order.
        """
        self._vectors = vectors
        self._card = None
        self._sig = None

    # ------------------------------------------------------------------
    # Load estimation
    # ------------------------------------------------------------------
    def _observed_window(self, adv_id: str, publisher: PublisherProfile) -> int:
        """Number of publication slots the vector had a chance to see."""
        vector = self._vectors[adv_id]
        window = publisher.last_message_id - vector.first_id + 1
        return max(1, min(vector.capacity, window))

    def fraction(self, adv_id: str, publisher: PublisherProfile) -> float:
        """Fraction of ``adv_id``'s publications this subscription sinks."""
        vector = self._vectors.get(adv_id)
        if vector is None:
            return 0.0
        window = self._observed_window(adv_id, publisher)
        return min(1.0, vector.cardinality / window)

    def estimated_rate(self, directory: PublisherDirectory) -> float:
        """Publication rate (msg/s) this subscription induces."""
        total = 0.0
        for adv_id in self._vectors:
            publisher = directory.get(adv_id)
            if publisher is not None:
                total += self.fraction(adv_id, publisher) * publisher.publication_rate
        return total

    def estimated_bandwidth(self, directory: PublisherDirectory) -> float:
        """Output bandwidth (kB/s) required to serve this subscription."""
        total = 0.0
        for adv_id in self._vectors:
            publisher = directory.get(adv_id)
            if publisher is not None:
                total += self.fraction(adv_id, publisher) * publisher.bandwidth
        return total

    # ------------------------------------------------------------------
    # Set algebra over whole profiles
    # ------------------------------------------------------------------
    def union(self, other: "SubscriptionProfile") -> "SubscriptionProfile":
        """OR-merge two profiles (the paper's clustering operation)."""
        merged = SubscriptionProfile(capacity=max(self._capacity, other._capacity))
        merged._vectors = {adv: vec.copy() for adv, vec in self._vectors.items()}
        for adv_id, vector in other._vectors.items():
            existing = merged._vectors.get(adv_id)
            if existing is None:
                merged._vectors[adv_id] = vector.copy()
            else:
                merged._vectors[adv_id] = existing.union(vector)
        return merged

    def intersection_cardinality(self, other: "SubscriptionProfile") -> int:
        total = 0
        for adv_id, vector in self._vectors.items():
            theirs = other._vectors.get(adv_id)
            if theirs is not None:
                total += vector.intersection_cardinality(theirs)
        return total

    def fused_cardinalities(
        self, other: "SubscriptionProfile"
    ) -> Tuple[int, int, int]:
        """``(|∩|, |∪|, |⊕|)`` from one two-sided walk over both profiles.

        This is the single shared counting path: each shared publisher
        is aligned once via
        :meth:`~repro.core.bitvector.BitVector.fused_cardinalities`
        (which routes through :mod:`repro.core.popcount`, the same
        helper the fused kernel and the columnar store use), and the
        one-sided vectors contribute their cached cardinalities.
        :meth:`union_cardinality` and :meth:`xor_cardinality` are thin
        projections of this walk rather than duplicated traversals.
        """
        intersect = 0
        union = 0
        for adv_id, vector in self._vectors.items():
            theirs = other._vectors.get(adv_id)
            if theirs is None:
                union += vector.cardinality
            else:
                i, u, _x = vector.fused_cardinalities(theirs)
                intersect += i
                union += u
        for adv_id, theirs in other._vectors.items():
            if adv_id not in self._vectors:
                union += theirs.cardinality
        return intersect, union, union - intersect

    def union_cardinality(self, other: "SubscriptionProfile") -> int:
        _i, union, _x = self.fused_cardinalities(other)
        return union

    def xor_cardinality(self, other: "SubscriptionProfile") -> int:
        """``|self ⊕ other|`` via the shared fused walk."""
        _i, _u, xor = self.fused_cardinalities(other)
        return xor

    def covers(self, other: "SubscriptionProfile") -> bool:
        """Whether this profile's bits are a superset of ``other``'s."""
        for adv_id, theirs in other._vectors.items():
            if not theirs:
                continue
            mine = self._vectors.get(adv_id)
            if mine is None or not mine.covers(theirs):
                return False
        return True

    def is_disjoint(self, other: "SubscriptionProfile") -> bool:
        return self.intersection_cardinality(other) == 0

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def signature(self) -> Tuple[Tuple[str, Tuple[int, int]], ...]:
        """Hashable identity of the full bit pattern.

        Two subscriptions with equal signatures received exactly the
        same publications; CRAM groups them into one GIF.
        Empty vectors are excluded so a profile that merely *opened* a
        vector without recording bits hashes like one that never did.
        The tuple is cached until the next mutation; CRAM asks for it
        on every GIF-table lookup.
        """
        if self._sig is None:
            self._sig = tuple(
                sorted(
                    (adv_id, vector.signature())
                    for adv_id, vector in self._vectors.items()
                    if vector
                )
            )
        return self._sig

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SubscriptionProfile):
            return NotImplemented
        return self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SubscriptionProfile(publishers={len(self._vectors)}, "
            f"cardinality={self.cardinality})"
        )


def merge_profiles(profiles: Iterable[SubscriptionProfile]) -> SubscriptionProfile:
    """OR-merge any number of profiles into a fresh profile.

    Used both by CRAM clustering and by Phase 3, which maps each broker
    to the union of the profiles it serves.
    """
    iterator = iter(profiles)
    try:
        first = next(iterator)
    except StopIteration:
        return SubscriptionProfile()
    merged = first.copy()
    for profile in iterator:
        merged = merged.union(profile)
    return merged
