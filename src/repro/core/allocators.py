"""The allocator registry: pluggable Phase-2 allocation algorithms.

Experiment drivers used to hard-code a string-switch over the paper's
six CROC allocators (FBF, BIN PACKING, four CRAM metrics) — adding an
allocator variant meant editing the runner, the CLI, and the sweep
module in lockstep.  This module replaces that with a single registry
of :class:`AllocatorSpec` records:

* a spec binds a name to a *builder* — a callable taking keyword knobs
  (``rng``, ``failure_budget``, …) and returning a zero-argument
  allocator factory, the shape :class:`~repro.core.croc.Croc`
  consumes — plus a **capability set** (:data:`KNOWN_CAPABILITIES`)
  that lets the CLI, the spawn-pool worker replay, and the online
  scheduler query what an allocator can do without instantiating it;
* :func:`register` binds name + builder (the historical shim — specs
  are built for you) and :func:`register_spec` registers a ready spec;
* :func:`get` resolves a name to a ready factory;
* :func:`registered_names` drives CLI choices and the approach tables,
  preserving registration order (the paper's presentation order).

Builders accept ``**knobs`` liberally and pick what they understand,
so one call site can thread every experiment knob to every allocator.

Example
-------
>>> factory = get("cram-ios")
>>> factory().name
'cram-ios'
>>> supports("cram-ios-sharded", "sharded")
True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Iterable, Optional, Tuple

from repro.core.binpacking import BinPackingAllocator
from repro.core.cram import CramAllocator, ShardedCramAllocator
from repro.core.fbf import FbfAllocator
from repro.core.online import OnlineAllocator, OnlineSpec

#: A zero-argument callable producing a fresh allocator instance.
AllocatorFactory = Callable[[], Any]

#: A builder: keyword knobs in, allocator factory out.
AllocatorBuilder = Callable[..., AllocatorFactory]

#: The capability vocabulary specs may advertise:
#: ``incremental`` — exposes ``plan_migrations`` for the online
#: scheduler; ``sharded`` — partitions Phase 2 across shard workers;
#: ``kernel_aware`` — honors the ``use_kernel``/``use_columnar``/
#: ``columnar_backend`` knobs of :class:`~repro.core.config.RunConfig`;
#: ``energy_aware`` — accepts the ``energy`` knob (an
#: :class:`~repro.core.energy.EnergySpec`) and carries it for
#: energy-conscious scheduling decisions (never altering allocations).
KNOWN_CAPABILITIES: FrozenSet[str] = frozenset(
    {"incremental", "sharded", "kernel_aware", "energy_aware"}
)


@dataclass(frozen=True)
class AllocatorSpec:
    """One registry entry: name, builder, declared capabilities.

    Frozen and picklable (given a module-level builder), so the exact
    record registered in the parent process is what spawn-pool workers
    replay.
    """

    name: str
    builder: AllocatorBuilder
    capabilities: FrozenSet[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("allocator name must be non-empty")
        if not callable(self.builder):
            raise TypeError(
                f"allocator {self.name!r} builder must be callable, "
                f"got {type(self.builder).__name__}"
            )
        capabilities = frozenset(self.capabilities)
        unknown = capabilities - KNOWN_CAPABILITIES
        if unknown:
            raise ValueError(
                f"allocator {self.name!r} declares unknown capabilities "
                f"{sorted(unknown)}; known: {sorted(KNOWN_CAPABILITIES)}"
            )
        object.__setattr__(self, "capabilities", capabilities)

    def build(self, **knobs: Any) -> AllocatorFactory:
        """Invoke the builder (knob filtering is the builder's job)."""
        return self.builder(**knobs)


_REGISTRY: Dict[str, AllocatorSpec] = {}


def register_spec(spec: AllocatorSpec, *, replace: bool = False) -> None:
    """Register a ready :class:`AllocatorSpec`.

    Duplicate names are rejected unless ``replace`` is set — silently
    shadowing one of the paper's allocators would corrupt every table
    that derives its rows from the registry.
    """
    if spec.name in _REGISTRY and not replace:
        raise ValueError(
            f"allocator {spec.name!r} already registered "
            "(pass replace=True to override)"
        )
    _REGISTRY[spec.name] = spec


def register(
    name: str,
    builder: AllocatorBuilder,
    *,
    capabilities: Iterable[str] = (),
    replace: bool = False,
) -> None:
    """Bind ``name`` to an allocator ``builder`` (spec-building shim).

    The historical two-argument form keeps working; ``capabilities``
    defaults to none declared.  See :func:`register_spec` for the
    record-based API.
    """
    register_spec(
        AllocatorSpec(name=name, builder=builder,
                      capabilities=frozenset(capabilities)),
        replace=replace,
    )


def unregister(name: str) -> None:
    """Remove a registered allocator (unknown names raise)."""
    if name not in _REGISTRY:
        raise ValueError(f"allocator {name!r} is not registered")
    del _REGISTRY[name]


def is_registered(name: str) -> bool:
    """True when ``name`` resolves to a registered spec."""
    return name in _REGISTRY


def registered_names() -> Tuple[str, ...]:
    """All registered allocator names, in registration order."""
    return tuple(_REGISTRY)


def spec_for(name: str) -> AllocatorSpec:
    """The full :class:`AllocatorSpec` behind ``name``."""
    found = _REGISTRY.get(name)
    if found is None:
        raise ValueError(
            f"unknown allocator {name!r}; registered: "
            f"{', '.join(_REGISTRY) or '(none)'}"
        )
    return found


def registered_specs() -> Tuple[AllocatorSpec, ...]:
    """Every registered spec, in registration order."""
    return tuple(_REGISTRY.values())


def capabilities(name: str) -> FrozenSet[str]:
    """The capability set ``name`` declares."""
    return spec_for(name).capabilities


def supports(name: str, capability: str) -> bool:
    """Whether allocator ``name`` declares ``capability``."""
    if capability not in KNOWN_CAPABILITIES:
        raise ValueError(
            f"unknown capability {capability!r}; known: "
            f"{sorted(KNOWN_CAPABILITIES)}"
        )
    return capability in spec_for(name).capabilities


def names_with(capability: str) -> Tuple[str, ...]:
    """Registered names declaring ``capability``, registration order."""
    return tuple(
        spec.name
        for spec in _REGISTRY.values()
        if capability in spec.capabilities
    )


def get(name: str, **knobs: Any) -> AllocatorFactory:
    """Resolve ``name`` to a zero-argument allocator factory.

    ``knobs`` are forwarded to the builder; builders ignore knobs they
    do not understand.
    """
    return spec_for(name).build(**knobs)


# ----------------------------------------------------------------------
# Built-in allocators, in the paper's presentation order (§IV–V),
# followed by the online incremental strategies.
# ----------------------------------------------------------------------
def _fbf_builder(rng: Any = None, **_: Any) -> AllocatorFactory:
    return lambda: FbfAllocator(rng=rng)


def _binpacking_builder(**_: Any) -> AllocatorFactory:
    return BinPackingAllocator


class _CramBuilder:
    """Builder for the CRAM family, one instance per closeness metric.

    A module-level class (not a closure) so a registration that ends up
    in a worker snapshot pickles by reference like every other builder.
    """

    def __init__(self, metric: str):
        self.metric = metric

    def __call__(
        self,
        failure_budget: Any = None,
        use_kernel: Optional[bool] = None,
        use_columnar: Optional[bool] = None,
        columnar_backend: Optional[str] = None,
        **_: Any,
    ) -> AllocatorFactory:
        metric, budget = self.metric, failure_budget
        return lambda: CramAllocator(
            metric=metric,
            failure_budget=budget,
            use_kernel=use_kernel,
            use_columnar=use_columnar,
            columnar_backend=columnar_backend,
        )


class _ShardedCramBuilder:
    """Builder for sharded-Phase-2 CRAM (see ``repro.core.cram``).

    Module-level class for the same pickling-by-reference reason as
    :class:`_CramBuilder`.  The shard *runner* is intentionally not a
    knob here: it is process state installed by
    ``repro.experiments.parallel`` (or left serial), so a worker that
    replays this registration builds an allocator wired to *its own*
    runner.
    """

    def __init__(self, metric: str, shards: int = 4):
        self.metric = metric
        self.shards = shards

    def __call__(
        self,
        failure_budget: Any = None,
        use_kernel: Optional[bool] = None,
        use_columnar: Optional[bool] = None,
        columnar_backend: Optional[str] = None,
        **_: Any,
    ) -> AllocatorFactory:
        metric, shards, budget = self.metric, self.shards, failure_budget
        return lambda: ShardedCramAllocator(
            metric=metric,
            shards=shards,
            failure_budget=budget,
            use_kernel=use_kernel,
            use_columnar=use_columnar,
            columnar_backend=columnar_backend,
        )


class _OnlineBuilder:
    """Builder for the online incremental strategies.

    The registered approach name fixes the strategy; the ``online``
    knob (an :class:`~repro.core.online.OnlineSpec`) contributes every
    other tuning parameter.  Module-level class so worker snapshots
    pickle it by reference.
    """

    def __init__(self, strategy: str, metric: str = "ios"):
        self.strategy = strategy
        self.metric = metric

    def __call__(
        self,
        failure_budget: Any = None,
        online: Optional[OnlineSpec] = None,
        energy: Any = None,
        use_kernel: Optional[bool] = None,
        use_columnar: Optional[bool] = None,
        columnar_backend: Optional[str] = None,
        **_: Any,
    ) -> AllocatorFactory:
        strategy, metric, budget = self.strategy, self.metric, failure_budget
        spec, energy_spec = online, energy
        return lambda: OnlineAllocator(
            strategy=strategy,
            metric=metric,
            failure_budget=budget,
            spec=spec,
            energy=energy_spec,
            use_kernel=use_kernel,
            use_columnar=use_columnar,
            columnar_backend=columnar_backend,
        )


register("fbf", _fbf_builder)
register("binpacking", _binpacking_builder)
for _metric in ("intersect", "xor", "ios", "iou"):
    register(f"cram-{_metric}", _CramBuilder(_metric),
             capabilities=("kernel_aware",))
del _metric
register("cram-ios-sharded", _ShardedCramBuilder("ios"),
         capabilities=("kernel_aware", "sharded"))
register("inc-trade", _OnlineBuilder("inc_trade"),
         capabilities=("incremental", "kernel_aware", "energy_aware"))
register("fij-trade", _OnlineBuilder("fij_trade"),
         capabilities=("incremental", "kernel_aware", "energy_aware"))

#: Import-time snapshot of the built-in registrations.  Every Python
#: process that imports this module gets exactly these, so a spawned
#: pool worker only needs to be told about registrations *beyond* them
#: (see :func:`custom_registrations` and repro.experiments.parallel).
_BUILTIN_SPECS: Dict[str, AllocatorSpec] = dict(_REGISTRY)


def custom_registrations() -> Tuple[AllocatorSpec, ...]:
    """Registrations beyond (or shadowing) the import-time built-ins.

    Process-pool workers replay these specs to mirror the parent
    registry; the builders must therefore be module-level callables so
    pickling by reference works under the ``spawn`` start method
    (enforced by reprolint's ``unpicklable-worker`` rule).
    """
    return tuple(
        spec
        for name, spec in _REGISTRY.items()
        if _BUILTIN_SPECS.get(name) != spec
    )

#: Aliases re-exported at the :mod:`repro.core` / :mod:`repro` level,
#: where the short names would be ambiguous.
register_allocator = register
get_allocator = get
registered_allocators = registered_names
