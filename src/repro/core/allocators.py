"""The allocator registry: pluggable Phase-2 allocation algorithms.

Experiment drivers used to hard-code a string-switch over the paper's
six CROC allocators (FBF, BIN PACKING, four CRAM metrics) — adding an
allocator variant meant editing the runner, the CLI, and the sweep
module in lockstep.  This module replaces that with a single registry:

* :func:`register` binds a name to a *builder* — a callable taking
  keyword knobs (``rng``, ``failure_budget``, …) and returning a
  zero-argument allocator factory, the shape
  :class:`~repro.core.croc.Croc` consumes.
* :func:`get` resolves a name to a ready factory.
* :func:`registered_names` drives CLI choices and the approach tables,
  preserving registration order (the paper's presentation order).

Builders accept ``**knobs`` liberally and pick what they understand,
so one call site can thread every experiment knob to every allocator.

Example
-------
>>> factory = get("cram-ios")
>>> factory().name
'cram-ios'
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

from repro.core.binpacking import BinPackingAllocator
from repro.core.cram import CramAllocator, ShardedCramAllocator
from repro.core.fbf import FbfAllocator

#: A zero-argument callable producing a fresh allocator instance.
AllocatorFactory = Callable[[], Any]

#: A builder: keyword knobs in, allocator factory out.
AllocatorBuilder = Callable[..., AllocatorFactory]

_REGISTRY: Dict[str, AllocatorBuilder] = {}


def register(name: str, builder: AllocatorBuilder, *,
             replace: bool = False) -> None:
    """Bind ``name`` to an allocator ``builder``.

    Duplicate names are rejected unless ``replace`` is set — silently
    shadowing one of the paper's allocators would corrupt every table
    that derives its rows from the registry.
    """
    if not name:
        raise ValueError("allocator name must be non-empty")
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"allocator {name!r} already registered (pass replace=True to override)"
        )
    _REGISTRY[name] = builder


def unregister(name: str) -> None:
    """Remove a registered allocator (unknown names raise)."""
    if name not in _REGISTRY:
        raise ValueError(f"allocator {name!r} is not registered")
    del _REGISTRY[name]


def is_registered(name: str) -> bool:
    """True when ``name`` resolves to a registered builder."""
    return name in _REGISTRY


def registered_names() -> Tuple[str, ...]:
    """All registered allocator names, in registration order."""
    return tuple(_REGISTRY)


def get(name: str, **knobs: Any) -> AllocatorFactory:
    """Resolve ``name`` to a zero-argument allocator factory.

    ``knobs`` are forwarded to the builder; builders ignore knobs they
    do not understand.
    """
    builder = _REGISTRY.get(name)
    if builder is None:
        raise ValueError(
            f"unknown allocator {name!r}; registered: {', '.join(_REGISTRY) or '(none)'}"
        )
    return builder(**knobs)


# ----------------------------------------------------------------------
# Built-in allocators, in the paper's presentation order (§IV–V).
# ----------------------------------------------------------------------
def _fbf_builder(rng: Any = None, **_: Any) -> AllocatorFactory:
    return lambda: FbfAllocator(rng=rng)


def _binpacking_builder(**_: Any) -> AllocatorFactory:
    return BinPackingAllocator


class _CramBuilder:
    """Builder for the CRAM family, one instance per closeness metric.

    A module-level class (not a closure) so a registration that ends up
    in a worker snapshot pickles by reference like every other builder.
    """

    def __init__(self, metric: str):
        self.metric = metric

    def __call__(self, failure_budget: Any = None, **_: Any) -> AllocatorFactory:
        metric, budget = self.metric, failure_budget
        return lambda: CramAllocator(metric=metric, failure_budget=budget)


class _ShardedCramBuilder:
    """Builder for sharded-Phase-2 CRAM (see ``repro.core.cram``).

    Module-level class for the same pickling-by-reference reason as
    :class:`_CramBuilder`.  The shard *runner* is intentionally not a
    knob here: it is process state installed by
    ``repro.experiments.parallel`` (or left serial), so a worker that
    replays this registration builds an allocator wired to *its own*
    runner.
    """

    def __init__(self, metric: str, shards: int = 4):
        self.metric = metric
        self.shards = shards

    def __call__(self, failure_budget: Any = None, **_: Any) -> AllocatorFactory:
        metric, shards, budget = self.metric, self.shards, failure_budget
        return lambda: ShardedCramAllocator(
            metric=metric, shards=shards, failure_budget=budget
        )


register("fbf", _fbf_builder)
register("binpacking", _binpacking_builder)
for _metric in ("intersect", "xor", "ios", "iou"):
    register(f"cram-{_metric}", _CramBuilder(_metric))
del _metric
register("cram-ios-sharded", _ShardedCramBuilder("ios"))

#: Import-time snapshot of the built-in registrations.  Every Python
#: process that imports this module gets exactly these, so a spawned
#: pool worker only needs to be told about registrations *beyond* them
#: (see :func:`custom_registrations` and repro.experiments.parallel).
_BUILTIN_BUILDERS: Dict[str, AllocatorBuilder] = dict(_REGISTRY)


def custom_registrations() -> Tuple[Tuple[str, AllocatorBuilder], ...]:
    """Registrations beyond (or shadowing) the import-time built-ins.

    Process-pool workers replay these to mirror the parent registry;
    the builders must therefore be module-level callables so pickling
    by reference works under the ``spawn`` start method (enforced by
    reprolint's ``unpicklable-worker`` rule).
    """
    return tuple(
        (name, builder)
        for name, builder in _REGISTRY.items()
        if _BUILTIN_BUILDERS.get(name) is not builder
    )

#: Aliases re-exported at the :mod:`repro.core` / :mod:`repro` level,
#: where the short names would be ambiguous.
register_allocator = register
get_allocator = get
registered_allocators = registered_names
