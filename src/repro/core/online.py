"""Online incremental reallocation between full CROC cycles.

The paper's CROC pipeline re-solves the whole three-phase allocation on
every reconfiguration cycle — energy proportional to pool size, not to
drift.  This module adds the incremental middle ground: between full
cycles, a load estimator (see :mod:`repro.sim.estimator`) predicts
per-broker output load, and a *migration strategy* plans individual
subscription moves that pull overloaded brokers back under a
utilization ceiling without redeploying the overlay.

Two deterministic strategies are provided, named after the harvesting
and trading schemes of the incremental-reconfiguration literature:

``inc_trade``
    Harvest: for the worst overloaded broker, hand one subscription to
    the *best-off* (most headroom, currently underloaded) broker.
``fij_trade``
    Pairwise trades: every (overloaded source, underloaded target,
    subscription) triple is scored by the predicted squared-utilization
    improvement ``f_ij``; the best-scoring trade executes first.

Both strategies share a hysteresis band: only brokers **above**
``util_high`` shed load, only brokers **below** ``util_low`` accept it,
and a move may neither push the target over ``util_high`` nor leave it
worse off than the source was.  Brokers inside the band neither give
nor take, so a static workload converges to an empty plan and
subscriptions never ping-pong (pinned by ``tests/test_online.py``).

Everything here is pure data in, pure data out — broker loads and
per-subscription loads as floats, a :class:`MigrationPlan` back.  The
layering contract keeps :mod:`repro.core` below the simulator, so the
estimator feeding and the migration *execution* live in
:mod:`repro.experiments.continuous`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.capacity import AllocationResult
from repro.core.cram import CramAllocator, CramStats
from repro.core.floats import EPSILON, approx_le

#: Recognized strategy names (underscore canonical form).
STRATEGIES: Tuple[str, ...] = ("inc_trade", "fij_trade")


@dataclass(frozen=True)
class OnlineSpec:
    """Tuning knobs for the online reallocation schedule.

    Frozen and built from primitives so a spec rides inside a pickled
    ``CellSpec`` to spawn-pool workers unchanged.

    Parameters
    ----------
    strategy:
        ``inc_trade`` or ``fij_trade``.
    steps:
        Online migration steps interleaved before each full CROC cycle.
    util_high / util_low:
        The hysteresis band: brokers above ``util_high`` shed
        subscriptions, brokers below ``util_low`` accept them.
    drift_threshold:
        Skip the *full* CROC cycle while the estimator's predicted
        drift since the last full reconfiguration stays below this
        relative bound (0 disables skipping).
    max_moves:
        Migration ceiling per online step.
    window / horizon:
        Estimator sliding-window length and prediction look-ahead
        (virtual seconds).
    gap:
        Virtual seconds a migrated subscriber spends detached — the
        honest delivery gap each migration batch pays.
    autoscale / target_util:
        Enable the drift-gated pool autoscaler
        (:class:`repro.experiments.continuous.PoolAutoscaler`): size the
        allocated broker set so predicted load lands at ``target_util``
        of summed capacity, forcing a full CROC cycle whenever the
        target count disagrees with the current allocation.
    """

    strategy: str = "inc_trade"
    steps: int = 2
    util_high: float = 0.75
    util_low: float = 0.45
    drift_threshold: float = 0.0
    max_moves: int = 4
    window: int = 8
    horizon: float = 0.0
    gap: float = 0.05
    autoscale: bool = False
    target_util: float = 0.6

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown online strategy {self.strategy!r}; pick from {STRATEGIES}"
            )
        if self.steps < 0:
            raise ValueError(f"steps must be >= 0, got {self.steps}")
        if not 0.0 < self.util_low < self.util_high:
            raise ValueError(
                "utilization band requires 0 < util_low < util_high, got "
                f"low={self.util_low}, high={self.util_high}"
            )
        if self.drift_threshold < 0.0:
            raise ValueError(
                f"drift_threshold must be >= 0, got {self.drift_threshold}"
            )
        if self.max_moves < 1:
            raise ValueError(f"max_moves must be >= 1, got {self.max_moves}")
        if self.window < 2:
            raise ValueError(f"window must be >= 2, got {self.window}")
        if self.horizon < 0.0:
            raise ValueError(f"horizon must be >= 0, got {self.horizon}")
        if self.gap < 0.0:
            raise ValueError(f"gap must be >= 0, got {self.gap}")
        if not 0.0 < self.target_util <= 1.0:
            raise ValueError(
                f"target_util must be in (0, 1], got {self.target_util}"
            )

    _SPEC_KEYS = ("strategy", "steps", "high", "low", "drift", "moves",
                  "window", "horizon", "gap", "autoscale", "target")

    @classmethod
    def from_spec(cls, spec: str) -> Optional["OnlineSpec"]:
        """Parse a compact ``key=value[,key=value...]`` online spec.

        Keys: ``strategy`` (``inc_trade``/``fij_trade``, hyphens
        accepted), ``steps``, ``high``/``low`` (the utilization band),
        ``drift`` (skip-full-cycle threshold), ``moves`` (per-step
        migration cap), ``window``/``horizon`` (estimator), ``gap``
        (migration detach time).  A bare strategy name is accepted as
        shorthand; an empty spec or ``none`` yields ``None`` (online
        reallocation disabled).

        >>> OnlineSpec.from_spec("fij_trade,steps=3,high=0.8").steps
        3
        """
        text = spec.strip()
        if not text or text.lower() == "none":
            return None
        values: Dict[str, Any] = {}
        for part in text.split(","):
            part = part.strip()
            if "=" not in part:
                # Bare word shorthand for the strategy.
                values["strategy"] = part.lower().replace("-", "_")
                continue
            key, _, raw = part.partition("=")
            key = key.strip().lower()
            raw = raw.strip()
            if key not in cls._SPEC_KEYS:
                raise ValueError(
                    f"unknown online spec key {key!r} "
                    f"(known: {', '.join(cls._SPEC_KEYS)})"
                )
            if key == "strategy":
                values["strategy"] = raw.lower().replace("-", "_")
                continue
            try:
                value = int(raw) if key in ("steps", "moves", "window") else float(raw)
            except ValueError as exc:
                raise ValueError(f"online spec {key}={raw!r} is not numeric") from exc
            if key == "steps":
                values["steps"] = int(value)
            elif key == "high":
                values["util_high"] = float(value)
            elif key == "low":
                values["util_low"] = float(value)
            elif key == "drift":
                values["drift_threshold"] = float(value)
            elif key == "moves":
                values["max_moves"] = int(value)
            elif key == "window":
                values["window"] = int(value)
            elif key == "horizon":
                values["horizon"] = float(value)
            elif key == "autoscale":
                values["autoscale"] = bool(int(value))
            elif key == "target":
                values["target_util"] = float(value)
            else:
                values["gap"] = float(value)
        return cls(**values)


@dataclass(frozen=True)
class BrokerLoad:
    """One broker's predicted load against its output capacity.

    ``load`` and ``capacity`` share a unit (the scheduler feeds output
    kB/s against the capacity model's ``total_output_bandwidth``).
    """

    broker_id: str
    capacity: float
    load: float

    def __post_init__(self) -> None:
        if self.capacity <= 0.0:
            raise ValueError(
                f"broker {self.broker_id!r} capacity must be > 0, got {self.capacity}"
            )

    @property
    def utilization(self) -> float:
        return self.load / self.capacity


@dataclass(frozen=True)
class SubscriptionLoad:
    """One subscription's share of its current broker's load."""

    sub_id: str
    broker_id: str
    load: float


@dataclass(frozen=True)
class Migration:
    """One planned subscription move, with its predicted payoff.

    ``predicted_delta`` is the strategy's score for the move: the drop
    in summed squared utilization of the (source, target) pair.
    """

    sub_id: str
    source: str
    target: str
    load: float
    predicted_delta: float


@dataclass(frozen=True)
class MigrationPlan:
    """An ordered batch of migrations produced by one strategy step."""

    strategy: str
    moves: Tuple[Migration, ...] = ()

    def __len__(self) -> int:
        return len(self.moves)

    def __iter__(self):
        return iter(self.moves)

    @property
    def is_empty(self) -> bool:
        return not self.moves

    @property
    def total_load(self) -> float:
        """Summed load of every migrated subscription."""
        return sum(move.load for move in self.moves)

    def subscription_ids(self) -> Tuple[str, ...]:
        return tuple(move.sub_id for move in self.moves)

    def as_row(self) -> Dict[str, object]:
        return {
            "strategy": self.strategy,
            "moves": len(self.moves),
            "total_load": round(self.total_load, 4),
            "predicted_delta": round(
                sum(move.predicted_delta for move in self.moves), 6
            ),
        }


def _above(value: float, bound: float) -> bool:
    """Strictly above with float slack (the overload test)."""
    return not approx_le(value, bound)


class _TradeStrategy:
    """Shared mechanics: the hysteresis band and the planning state."""

    name = ""

    def __init__(self, spec: OnlineSpec):
        self.spec = spec

    # -- state preparation ------------------------------------------------
    def _prepare(
        self,
        brokers: Sequence[BrokerLoad],
        subscriptions: Sequence[SubscriptionLoad],
    ) -> Tuple[Dict[str, float], Dict[str, float], Dict[str, List[SubscriptionLoad]]]:
        capacities = {broker.broker_id: broker.capacity for broker in brokers}
        loads = {broker.broker_id: broker.load for broker in brokers}
        by_broker: Dict[str, List[SubscriptionLoad]] = {
            broker.broker_id: [] for broker in brokers
        }
        for sub in sorted(subscriptions, key=lambda s: (s.load, s.sub_id)):
            bucket = by_broker.get(sub.broker_id)
            if bucket is not None and sub.load > EPSILON:
                bucket.append(sub)
        return capacities, loads, by_broker

    def _overloaded(
        self, loads: Mapping[str, float], capacities: Mapping[str, float]
    ) -> List[str]:
        """Brokers above the ceiling, worst first (id tie-break)."""
        over = [
            broker_id
            for broker_id in capacities
            if _above(loads[broker_id] / capacities[broker_id], self.spec.util_high)
        ]
        return sorted(
            over, key=lambda b: (-(loads[b] / capacities[b]), b)
        )

    def _score(self, util_source: float, util_source_after: float,
               util_target: float, util_target_after: float) -> float:
        """Drop in summed squared utilization of the affected pair."""
        before = util_source * util_source + util_target * util_target
        after = (
            util_source_after * util_source_after
            + util_target_after * util_target_after
        )
        return before - after

    def plan(
        self,
        brokers: Sequence[BrokerLoad],
        subscriptions: Sequence[SubscriptionLoad],
    ) -> MigrationPlan:
        raise NotImplementedError

    def plan_migrations(
        self,
        brokers: Sequence[BrokerLoad],
        subscriptions: Sequence[SubscriptionLoad],
    ) -> MigrationPlan:
        """Alias matching :class:`OnlineAllocator`'s incremental API."""
        return self.plan(brokers, subscriptions)


class IncTrade(_TradeStrategy):
    """Harvest: worst overloaded broker feeds the best-off broker.

    Each move picks the currently worst source, the underloaded broker
    with the most absolute headroom, and the smallest subscription that
    clears the source's excess (falling back to the largest that fits).
    """

    name = "inc_trade"

    def plan(
        self,
        brokers: Sequence[BrokerLoad],
        subscriptions: Sequence[SubscriptionLoad],
    ) -> MigrationPlan:
        spec = self.spec
        capacities, loads, by_broker = self._prepare(brokers, subscriptions)
        moves: List[Migration] = []
        moved: set = set()
        while len(moves) < spec.max_moves:
            move = self._next_move(capacities, loads, by_broker, moved)
            if move is None:
                break
            moves.append(move)
            moved.add(move.sub_id)
            loads[move.source] -= move.load
            loads[move.target] += move.load
            by_broker[move.source] = [
                sub for sub in by_broker[move.source] if sub.sub_id != move.sub_id
            ]
        return MigrationPlan(strategy=self.name, moves=tuple(moves))

    def _next_move(self, capacities, loads, by_broker, moved) -> Optional[Migration]:
        spec = self.spec
        for source in self._overloaded(loads, capacities):
            util_source = loads[source] / capacities[source]
            excess = (util_source - spec.util_high) * capacities[source]
            candidates = [
                sub for sub in by_broker[source] if sub.sub_id not in moved
            ]
            if not candidates:
                continue
            # Best-off target: most absolute headroom below the ceiling,
            # among brokers currently under the low-water mark.
            target = None
            headroom = 0.0
            for broker_id in sorted(capacities):
                if broker_id == source:
                    continue
                util = loads[broker_id] / capacities[broker_id]
                if not util < spec.util_low:
                    continue
                room = (spec.util_high - util) * capacities[broker_id]
                if room > headroom + EPSILON:
                    target = broker_id
                    headroom = room
            if target is None:
                continue
            # Smallest subscription that clears the excess, else the
            # largest one that still fits the target's headroom.
            fitting = [sub for sub in candidates if approx_le(sub.load, headroom)]
            if not fitting:
                continue
            pick = next(
                (sub for sub in fitting if sub.load >= excess - EPSILON),
                fitting[-1],
            )
            util_target = loads[target] / capacities[target]
            util_source_after = (loads[source] - pick.load) / capacities[source]
            util_target_after = (loads[target] + pick.load) / capacities[target]
            if not util_target_after < util_source:
                # The move would leave the target worse off than the
                # source was — harvesting stops paying here.
                continue
            return Migration(
                sub_id=pick.sub_id,
                source=source,
                target=target,
                load=pick.load,
                predicted_delta=self._score(
                    util_source, util_source_after, util_target, util_target_after
                ),
            )
        return None


class FijTrade(_TradeStrategy):
    """Pairwise trades scored by predicted load delta (``f_ij``).

    Every (overloaded source, underloaded target, subscription) triple
    is scored by the predicted drop in the pair's summed squared
    utilization; the highest-scoring trade executes, the loads update,
    and scoring repeats until the ceiling clears, the score turns
    non-positive, or ``max_moves`` is reached.
    """

    name = "fij_trade"

    def plan(
        self,
        brokers: Sequence[BrokerLoad],
        subscriptions: Sequence[SubscriptionLoad],
    ) -> MigrationPlan:
        spec = self.spec
        capacities, loads, by_broker = self._prepare(brokers, subscriptions)
        moves: List[Migration] = []
        moved: set = set()
        while len(moves) < spec.max_moves:
            best: Optional[Migration] = None
            best_key: Tuple[float, str, str, str] = (0.0, "", "", "")
            for source in self._overloaded(loads, capacities):
                util_source = loads[source] / capacities[source]
                for sub in by_broker[source]:
                    if sub.sub_id in moved:
                        continue
                    util_source_after = (
                        loads[source] - sub.load
                    ) / capacities[source]
                    for target in sorted(capacities):
                        if target == source:
                            continue
                        util_target = loads[target] / capacities[target]
                        if not util_target < spec.util_low:
                            continue
                        util_target_after = (
                            loads[target] + sub.load
                        ) / capacities[target]
                        if _above(util_target_after, spec.util_high):
                            continue
                        if not util_target_after < util_source:
                            continue
                        score = self._score(
                            util_source, util_source_after,
                            util_target, util_target_after,
                        )
                        if score <= EPSILON:
                            continue
                        key = (-score, source, target, sub.sub_id)
                        if best is None or key < best_key:
                            best = Migration(
                                sub_id=sub.sub_id,
                                source=source,
                                target=target,
                                load=sub.load,
                                predicted_delta=score,
                            )
                            best_key = key
            if best is None:
                break
            moves.append(best)
            moved.add(best.sub_id)
            loads[best.source] -= best.load
            loads[best.target] += best.load
            by_broker[best.source] = [
                sub
                for sub in by_broker[best.source]
                if sub.sub_id != best.sub_id
            ]
        return MigrationPlan(strategy=self.name, moves=tuple(moves))


def make_strategy(spec: OnlineSpec) -> _TradeStrategy:
    """Instantiate the strategy named by ``spec.strategy``."""
    if spec.strategy == "inc_trade":
        return IncTrade(spec)
    if spec.strategy == "fij_trade":
        return FijTrade(spec)
    raise ValueError(
        f"unknown online strategy {spec.strategy!r}; pick from {STRATEGIES}"
    )


class OnlineAllocator:
    """Registry-facing allocator pairing full CROC with online trades.

    As a Phase-2 allocator it delegates :meth:`allocate` to an inner
    :class:`~repro.core.cram.CramAllocator` — running ``inc-trade`` or
    ``fij-trade`` as a one-shot approach produces the same allocation
    quality as the CRAM metric it wraps.  What the registry's
    ``incremental`` capability advertises is :meth:`plan_migrations`:
    the online scheduler calls it between full cycles with estimator
    predictions and per-subscription loads.
    """

    def __init__(
        self,
        strategy: str = "inc_trade",
        metric: str = "ios",
        failure_budget: Optional[int] = None,
        spec: Optional[OnlineSpec] = None,
        energy: Any = None,
        use_kernel: Optional[bool] = None,
        use_columnar: Optional[bool] = None,
        columnar_backend: Optional[str] = None,
    ):
        if spec is None:
            spec = OnlineSpec(strategy=strategy)
        elif spec.strategy != strategy:
            # The registered approach name decides the strategy; the
            # spec contributes every other knob.
            spec = replace(spec, strategy=strategy)
        self.spec = spec
        #: The ``energy_aware`` capability: an attached
        #: :class:`~repro.core.energy.EnergySpec` rides along for the
        #: scheduler's per-cycle accounting.  Never consulted during
        #: :meth:`allocate` / :meth:`plan_migrations` — attaching it
        #: cannot change any allocation (the equivalence contract).
        self.energy_spec = energy
        self.strategy = make_strategy(self.spec)
        self.name = strategy.replace("_", "-")
        self._inner = CramAllocator(
            metric=metric,
            failure_budget=failure_budget,
            use_kernel=use_kernel,
            use_columnar=use_columnar,
            columnar_backend=columnar_backend,
        )

    @property
    def last_stats(self) -> CramStats:
        """The inner CRAM run's statistics (for parity with cram-*)."""
        return self._inner.last_stats

    def allocate(self, units, pool, directory) -> AllocationResult:
        """Full Phase-2 allocation, delegated to the inner CRAM."""
        return self._inner.allocate(units, pool, directory)

    def plan_migrations(
        self,
        brokers: Sequence[BrokerLoad],
        subscriptions: Sequence[SubscriptionLoad],
    ) -> MigrationPlan:
        """Plan one online step from predicted loads (pure, no I/O)."""
        return self.strategy.plan(brokers, subscriptions)
