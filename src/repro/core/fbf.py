"""Fastest Broker First (FBF) subscription allocation (paper §IV-A).

Brokers are sorted in descending order of total available output
bandwidth (the broker bottleneck observed with PADRES is network I/O,
not processing).  Subscriptions are then drawn *in random order* from
the subscription pool and each is assigned to the most resourceful
broker that still has the capacity to handle it.  The algorithm fails
as soon as one subscription fits nowhere.

Complexity: O(S) in the number of subscriptions (the paper assumes
S >> number of brokers).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.core.capacity import (
    AllocationResult,
    BrokerBin,
    BrokerSpec,
    sorted_broker_pool,
)
from repro.core.profiles import PublisherDirectory
from repro.core.units import AllocationUnit
from repro.sim.rng import SeededRng


def first_fit(
    ordered_units: Sequence[AllocationUnit],
    pool: Iterable[BrokerSpec],
    directory: PublisherDirectory,
) -> AllocationResult:
    """Place units, in the given order, onto the descending-capacity pool.

    Shared engine of FBF and BIN PACKING: the two differ only in how
    they order the unit sequence.  Each unit goes to the first broker
    (most resourceful first) that passes the feasibility test.
    """
    bins = [BrokerBin(spec, directory) for spec in sorted_broker_pool(pool)]
    for unit in ordered_units:
        for bin_ in bins:
            if bin_.can_accept(unit):
                bin_.add(unit)
                break
        else:
            return AllocationResult(bins, success=False, failed_unit=unit)
    return AllocationResult(bins, success=True)


class FbfAllocator:
    """Fastest Broker First.

    Parameters
    ----------
    rng:
        Source of the random subscription draw order.  Defaults to a
        fixed seed so library users get reproducible runs unless they
        opt into their own stream.
    """

    name = "fbf"

    def __init__(self, rng: Optional[SeededRng] = None):
        self._rng = rng if rng is not None else SeededRng(0, "fbf")

    def allocate(
        self,
        units: Sequence[AllocationUnit],
        pool: Iterable[BrokerSpec],
        directory: PublisherDirectory,
    ) -> AllocationResult:
        """Allocate ``units`` onto ``pool`` in random draw order."""
        order = self._rng.shuffled(units)
        return first_fit(order, pool, directory)
