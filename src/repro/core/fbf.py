"""Fastest Broker First (FBF) subscription allocation (paper §IV-A).

Brokers are sorted in descending order of total available output
bandwidth (the broker bottleneck observed with PADRES is network I/O,
not processing).  Subscriptions are then drawn *in random order* from
the subscription pool and each is assigned to the most resourceful
broker that still has the capacity to handle it.  The algorithm fails
as soon as one subscription fits nowhere.

Complexity: O(S) in the number of subscriptions (the paper assumes
S >> number of brokers).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence

from repro.core.capacity import (
    AllocationResult,
    BrokerBin,
    BrokerSpec,
    sorted_broker_pool,
)
from repro.core.kernel import ClosenessKernel
from repro.core.profiles import PublisherDirectory
from repro.core.units import EPSILON, AllocationUnit
from repro.obs import recorder as obs
from repro.core.rng import SeededRng


def first_fit(
    ordered_units: Sequence[AllocationUnit],
    pool: Iterable[BrokerSpec],
    directory: PublisherDirectory,
    kernel: Optional[ClosenessKernel] = None,
) -> AllocationResult:
    """Place units, in the given order, onto the descending-capacity pool.

    Shared engine of FBF and BIN PACKING: the two differ only in how
    they order the unit sequence.  Each unit goes to the first broker
    (most resourceful first) that passes the feasibility test.  An
    optional fused ``kernel`` switches to a flat loop over packed bin
    state (same results, fewer big-int shifts and method calls).
    """
    specs = sorted_broker_pool(pool)
    if kernel is not None:
        result = _packed_first_fit(ordered_units, specs, directory, kernel)
        if result is not None:
            return result
    bins = [BrokerBin(spec, directory, kernel=kernel) for spec in specs]
    for unit in ordered_units:
        for bin_ in bins:
            if bin_.can_accept(unit):
                bin_.add(unit)
                break
        else:
            return AllocationResult(bins, success=False, failed_unit=unit)
    return AllocationResult(bins, success=True)


def _packed_first_fit(
    ordered_units: Sequence[AllocationUnit],
    specs: Sequence[BrokerSpec],
    directory: PublisherDirectory,
    kernel: ClosenessKernel,
) -> Optional[AllocationResult]:
    """First fit over flat packed bin state — CRAM probes thousands of
    these runs, so the inner loop avoids per-bin method dispatch.

    Verdicts and float updates are identical to the :class:`BrokerBin`
    loop: same tolerance checks, same inlined delay arithmetic, same
    memoized packed rate deltas.  Returns ``None`` when a unit's
    profile does not pack purely; the caller then reruns the generic
    loop, whose per-bin demotion handles mixed pools.
    """
    count = len(specs)
    capacities = [spec.total_output_bandwidth for spec in specs]
    delay_bases = [spec.delay_function.base for spec in specs]
    delay_slopes = [spec.delay_function.per_subscription for spec in specs]
    used = [0.0] * count
    subscription_counts = [0] * count
    input_rates = [0.0] * count
    union_bits = [0] * count
    contents: List[List[AllocationUnit]] = [[] for _ in range(count)]
    bin_indices = range(count)
    infinity = math.inf
    failed: Optional[AllocationUnit] = None
    for unit in ordered_units:
        hint = unit.pack_hint
        if hint is not None and hint[0] is kernel:
            packed = hint[1]
        else:
            packed = kernel.pack(unit.profile)
            unit.pack_hint = (kernel, packed)
        if not packed.pure:
            return None
        bandwidth = unit.delivery_bandwidth
        unit_subscriptions = unit.subscription_count
        rate_memo = packed.rate_memo
        for index in bin_indices:
            if used[index] + bandwidth > capacities[index] + EPSILON:
                continue
            total_subs = subscription_counts[index] + unit_subscriptions
            delay = delay_bases[index] + delay_slopes[index] * total_subs
            max_rate = infinity if delay <= 0 else 1.0 / delay
            bin_bits = union_bits[index]
            increase = rate_memo.get(bin_bits)
            if increase is None:
                increase = packed.rate_increase(bin_bits)
            if input_rates[index] + increase > max_rate + EPSILON:
                continue
            input_rates[index] += increase
            union_bits[index] = bin_bits | packed.bits
            used[index] += bandwidth
            subscription_counts[index] = total_subs
            contents[index].append(unit)
            break
        else:
            failed = unit
            break
    bins = [
        BrokerBin.from_packed_state(
            spec,
            directory,
            kernel,
            contents[index],
            used[index],
            subscription_counts[index],
            input_rates[index],
            union_bits[index],
        )
        for index, spec in enumerate(specs)
    ]
    if failed is not None:
        return AllocationResult(bins, success=False, failed_unit=failed)
    return AllocationResult(bins, success=True)


class FbfAllocator:
    """Fastest Broker First.

    Parameters
    ----------
    rng:
        Source of the random subscription draw order.  Defaults to a
        fixed seed so library users get reproducible runs unless they
        opt into their own stream.
    """

    name = "fbf"

    def __init__(self, rng: Optional[SeededRng] = None):
        self._rng = rng if rng is not None else SeededRng(0, "fbf")
        #: Optional fused kernel for packed bin bookkeeping (set by
        #: callers that pre-packed the pool; the signature of
        #: ``allocate`` is fixed by the allocator protocol).
        self.kernel: Optional[ClosenessKernel] = None

    def allocate(
        self,
        units: Sequence[AllocationUnit],
        pool: Iterable[BrokerSpec],
        directory: PublisherDirectory,
    ) -> AllocationResult:
        """Allocate ``units`` onto ``pool`` in random draw order."""
        with obs.span("fbf.first_fit", units=len(units)):
            order = self._rng.shuffled(units)
            return first_fit(order, pool, directory, kernel=self.kernel)
