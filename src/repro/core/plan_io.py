"""Serialization of deployments and reconfiguration plans.

CROC's output — which brokers stay on, how they are wired, where every
client attaches — is exactly what an operator wants to review before
powering off most of a data center.  This module round-trips
:class:`~repro.core.deployment.Deployment` objects through plain JSON
documents (stable key order, no custom types), so plans can be diffed,
archived, audited, and re-applied later.

The schema is versioned; loaders reject documents from future
versions instead of mis-reading them.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Union

from repro.core.deployment import BrokerTree, Deployment

#: Current schema version written by :func:`deployment_to_dict`.
SCHEMA_VERSION = 1


class PlanFormatError(ValueError):
    """Raised when a plan document cannot be interpreted."""


def deployment_to_dict(deployment: Deployment) -> Dict[str, Any]:
    """A JSON-ready description of a deployment.

    Only the topology and placements are captured — allocation units
    (which embed live profile objects) are intentionally excluded; they
    are an artifact of planning, not of the plan.
    """
    tree = deployment.tree
    return {
        "schema_version": SCHEMA_VERSION,
        "approach": deployment.approach,
        "root": tree.root,
        "edges": sorted((parent, child) for parent, child in tree.edges()),
        "subscription_placement": dict(
            sorted(deployment.subscription_placement.items())
        ),
        "publisher_placement": dict(
            sorted(deployment.publisher_placement.items())
        ),
    }


def deployment_from_dict(document: Dict[str, Any]) -> Deployment:
    """Rebuild a deployment from :func:`deployment_to_dict` output."""
    try:
        version = document["schema_version"]
    except (TypeError, KeyError):
        raise PlanFormatError("missing schema_version") from None
    if not isinstance(version, int) or version > SCHEMA_VERSION or version < 1:
        raise PlanFormatError(f"unsupported schema_version {version!r}")
    try:
        root = document["root"]
        edges = [tuple(edge) for edge in document["edges"]]
        subscription_placement = dict(document["subscription_placement"])
        publisher_placement = dict(document["publisher_placement"])
    except (TypeError, KeyError) as exc:
        raise PlanFormatError(f"malformed plan document: {exc}") from None
    tree = BrokerTree(root)
    pending = list(edges)
    # Edges may arrive in any order; attach children whose parent is
    # already in the tree until the list drains (or cannot).
    progress = True
    while pending and progress:
        progress = False
        remaining = []
        for parent, child in pending:
            if parent in tree:
                tree.add_broker(child, parent)
                progress = True
            else:
                remaining.append((parent, child))
        pending = remaining
    if pending:
        raise PlanFormatError(
            f"edges disconnected from root {root!r}: {sorted(pending)}"
        )
    deployment = Deployment(
        tree=tree,
        subscription_placement=subscription_placement,
        publisher_placement=publisher_placement,
        approach=document.get("approach", ""),
    )
    deployment.validate()
    return deployment


def save_deployment(deployment: Deployment,
                    destination: Union[str, IO[str]]) -> None:
    """Write a deployment to a path or open text file as JSON."""
    document = deployment_to_dict(deployment)
    if isinstance(destination, str):
        with open(destination, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
    else:
        json.dump(document, destination, indent=2, sort_keys=True)


def load_deployment(source: Union[str, IO[str]]) -> Deployment:
    """Read a deployment from a path or open text file."""
    if isinstance(source, str):
        with open(source) as handle:
            document = json.load(handle)
    else:
        document = json.load(source)
    return deployment_from_dict(document)
