"""Post-hoc validation of a planned deployment against the profiles.

CROC's allocators enforce feasibility *incrementally* while packing;
this module re-derives every broker's expected load from first
principles — the bit-vector profiles of everything placed on or routed
through it — and checks the deployment against the broker specs.  It
is the safety net the paper's operators would want before powering off
most of a production data center:

* every subscription is placed exactly once, on a broker in the tree;
* every broker's expected **output** (subscriber deliveries + one
  stream per child edge) fits its total output bandwidth;
* every broker's expected **input** (per-publisher union of everything
  needed in its subtree, plus locally attached publishers) does not
  exceed its maximum matching rate;
* every tree edge's stream fits the parent's remaining bandwidth.

`validate_deployment` returns a :class:`ValidationReport` listing every
violation rather than raising, so callers can decide whether a small
overshoot (e.g. from profile estimation error) is acceptable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

from repro.core.capacity import BrokerSpec
from repro.core.deployment import BrokerTree, Deployment
from repro.core.profiles import PublisherDirectory, SubscriptionProfile, merge_profiles
from repro.core.units import SubscriptionRecord


@dataclass
class BrokerLoad:
    """Expected steady-state load of one broker under a deployment."""

    broker_id: str
    delivery_bandwidth: float = 0.0
    stream_bandwidth: float = 0.0
    input_rate: float = 0.0
    subscription_count: int = 0

    @property
    def output_bandwidth(self) -> float:
        return self.delivery_bandwidth + self.stream_bandwidth


@dataclass
class Violation:
    """One constraint breach found during validation."""

    broker_id: str
    kind: str  # "output-bandwidth" | "matching-rate" | "placement"
    detail: str
    measured: float = 0.0
    limit: float = 0.0

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.kind}] {self.broker_id}: {self.detail}"


@dataclass
class ValidationReport:
    """Outcome of validating one deployment."""

    loads: Dict[str, BrokerLoad] = field(default_factory=dict)
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def violations_of(self, kind: str) -> List[Violation]:
        return [violation for violation in self.violations if violation.kind == kind]


def _subtree_profiles(
    tree: BrokerTree,
    profiles_by_broker: Mapping[str, List[SubscriptionProfile]],
) -> Dict[str, SubscriptionProfile]:
    """broker_id → union profile of everything needed in its subtree."""
    subtree: Dict[str, SubscriptionProfile] = {}

    def visit(broker_id: str) -> SubscriptionProfile:
        parts = list(profiles_by_broker.get(broker_id, ()))
        for child in tree.children(broker_id):
            parts.append(visit(child))
        merged = merge_profiles(parts)
        subtree[broker_id] = merged
        return merged

    visit(tree.root)
    return subtree


def validate_deployment(
    deployment: Deployment,
    records: Sequence[SubscriptionRecord],
    directory: PublisherDirectory,
    specs: Mapping[str, BrokerSpec],
    tolerance: float = 1.05,
) -> ValidationReport:
    """Check a deployment against broker capacities.

    Parameters
    ----------
    tolerance:
        Multiplicative slack on every limit (profiles are estimates;
        5% by default).
    """
    report = ValidationReport()
    tree = deployment.tree
    records_by_id = {record.sub_id: record for record in records}

    # ------------------------------------------------------------------
    # Placement sanity
    # ------------------------------------------------------------------
    profiles_by_broker: Dict[str, List[SubscriptionProfile]] = {}
    delivery_by_broker: Dict[str, float] = {}
    count_by_broker: Dict[str, int] = {}
    for sub_id, record in records_by_id.items():
        broker_id = deployment.subscription_placement.get(sub_id)
        if broker_id is None:
            report.violations.append(Violation(
                broker_id="-", kind="placement",
                detail=f"subscription {sub_id!r} is not placed",
            ))
            continue
        if broker_id not in tree:
            report.violations.append(Violation(
                broker_id=broker_id, kind="placement",
                detail=f"subscription {sub_id!r} placed on broker outside the tree",
            ))
            continue
        profiles_by_broker.setdefault(broker_id, []).append(record.profile)
        delivery_by_broker[broker_id] = (
            delivery_by_broker.get(broker_id, 0.0)
            + record.profile.estimated_bandwidth(directory)
        )
        count_by_broker[broker_id] = count_by_broker.get(broker_id, 0) + 1
    for sub_id in deployment.subscription_placement:
        if sub_id not in records_by_id:
            report.violations.append(Violation(
                broker_id="-", kind="placement",
                detail=f"placement names unknown subscription {sub_id!r}",
            ))

    # ------------------------------------------------------------------
    # Per-broker loads
    # ------------------------------------------------------------------
    subtree = _subtree_profiles(tree, profiles_by_broker)
    publishers_here: Dict[str, List[str]] = {}
    for adv_id, broker_id in deployment.publisher_placement.items():
        publishers_here.setdefault(broker_id, []).append(adv_id)

    for broker_id in tree.brokers:
        spec = specs.get(broker_id)
        load = BrokerLoad(broker_id=broker_id)
        load.delivery_bandwidth = delivery_by_broker.get(broker_id, 0.0)
        load.subscription_count = count_by_broker.get(broker_id, 0)
        for child in tree.children(broker_id):
            load.stream_bandwidth += subtree[child].estimated_bandwidth(directory)
        # Input: the broker receives whatever its own subtree needs that
        # arrives from elsewhere, plus everything the rest of the tree
        # needs that must transit through it.  A safe (and simple) upper
        # bound is the union of (a) its subtree's needs and (b) its
        # local publishers' full rates.
        load.input_rate = subtree[broker_id].estimated_rate(directory)
        for adv_id in publishers_here.get(broker_id, ()):  # local publishers
            publisher = directory.get(adv_id)
            if publisher is not None:
                load.input_rate += publisher.publication_rate
        report.loads[broker_id] = load
        if spec is None:
            report.violations.append(Violation(
                broker_id=broker_id, kind="placement",
                detail="no spec known for this broker",
            ))
            continue
        limit = spec.total_output_bandwidth * tolerance
        if load.output_bandwidth > limit:
            report.violations.append(Violation(
                broker_id=broker_id, kind="output-bandwidth",
                detail=(
                    f"expected output {load.output_bandwidth:.2f} kB/s exceeds "
                    f"{spec.total_output_bandwidth:.2f} kB/s"
                ),
                measured=load.output_bandwidth,
                limit=spec.total_output_bandwidth,
            ))
        max_rate = spec.delay_function.max_matching_rate(load.subscription_count)
        if load.input_rate > max_rate * tolerance:
            report.violations.append(Violation(
                broker_id=broker_id, kind="matching-rate",
                detail=(
                    f"expected input {load.input_rate:.2f} msg/s exceeds the "
                    f"maximum matching rate {max_rate:.2f} msg/s"
                ),
                measured=load.input_rate,
                limit=max_rate,
            ))
    return report
