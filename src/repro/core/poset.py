"""Poset of GIFs and the pruned closest-partner search (paper §IV-C.2).

The poset is a directed acyclic graph rooted at a virtual ROOT node.
A node's parents have profiles that are strict supersets of its own;
intersecting or disjoint profiles appear as siblings.  Unlike the
classic use in SIENA/PADRES, relationships here are computed from the
**bit vectors**, not the subscription language, which keeps the whole
framework language-independent.

The poset supports CRAM's second optimization: when searching for the
GIF closest to ``g`` under a *prunable* metric (INTERSECT, IOS, IOU),

* a node with zero closeness to ``g`` has an empty relationship with
  it, and so do all of its descendants — skip the subtree;
* descending, the closeness is non-decreasing until the search passes
  ``g``'s own region and starts to decrease — stop descending there.

The XOR metric is never zero, so it cannot be pruned; the search falls
back to an exhaustive scan, which is what makes XOR ≥75% slower in the
paper (reproduced by the ``tab-pruning`` benchmark, which also counts
closeness evaluations).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.core.closeness import ClosenessMetric
from repro.core.gif import Gif
from repro.core.units import approx_zero

if TYPE_CHECKING:  # pragma: no cover - type-only (avoids import at load)
    from repro.core.kernel import ClosenessKernel


class PosetNode:
    """One GIF inside the poset."""

    __slots__ = ("gif", "parents", "children", "_ordered")

    def __init__(self, gif: Optional[Gif]):
        self.gif = gif  # None for the virtual root
        self.parents: Set["PosetNode"] = set()
        self.children: Set["PosetNode"] = set()
        #: Sorted-children cache; None when ``children`` changed since
        #: the last sort.  All edge mutations go through Poset methods,
        #: which invalidate it.
        self._ordered: Optional[List["PosetNode"]] = None

    @property
    def is_root(self) -> bool:
        return self.gif is None

    def covers(self, other: "PosetNode") -> bool:
        """Whether this node's profile is a superset of ``other``'s."""
        if self.is_root:
            return True
        if other.is_root:
            return False
        return self.gif.profile.covers(other.gif.profile)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_root:
            return "PosetNode(ROOT)"
        return f"PosetNode(gif={self.gif.gif_id})"


def _ordered_children(node: PosetNode) -> List[PosetNode]:
    """A node's children in ascending ``gif_id`` order (deterministic).

    Cached on the node: partner searches re-walk the same frontier on
    every CRAM round, while edges only change at the few nodes an
    insert or remove touches.
    """
    ordered = node._ordered
    if ordered is None:
        ordered = node._ordered = sorted(
            node.children, key=lambda child: child.gif.gif_id
        )
    return ordered


class Poset:
    """DAG of GIFs ordered by bit-vector coverage.

    An optional fused ``kernel`` accelerates the coverage tests that
    dominate insertion; :meth:`validate` deliberately stays on the
    naive path so it remains an independent check.
    """

    def __init__(self, kernel: Optional["ClosenessKernel"] = None):
        self.root = PosetNode(None)
        self._nodes: Dict[int, PosetNode] = {}
        self._kernel = kernel
        #: (coverer gif_id, covered gif_id) -> verdict.  Sound for the
        #: poset's lifetime: a GIF's profile is fixed at construction
        #: and gif_ids are never reused, so a verdict cannot go stale.
        #: This is what makes re-inserting after a CRAM merge cheap —
        #: only pairs involving the brand-new merged GIF miss.
        self._cover_memo: Dict[Tuple[int, int], bool] = {}

    def _covers(self, node: PosetNode, other: PosetNode) -> bool:
        """Kernel-accelerated :meth:`PosetNode.covers` (same verdicts)."""
        if node.is_root:
            return True
        if other.is_root:
            return False
        key = (node.gif.gif_id, other.gif.gif_id)
        verdict = self._cover_memo.get(key)
        if verdict is None:
            if self._kernel is not None:
                verdict = self._kernel.covers(node.gif.profile, other.gif.profile)
            else:
                verdict = None
            if verdict is None:
                verdict = node.gif.profile.covers(other.gif.profile)
            self._cover_memo[key] = verdict
        return verdict

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, gif: Gif) -> bool:
        return gif.gif_id in self._nodes

    def node_of(self, gif: Gif) -> PosetNode:
        return self._nodes[gif.gif_id]

    def nodes(self) -> Iterator[PosetNode]:
        return iter(self._nodes.values())

    def gifs(self) -> Iterator[Gif]:
        return (node.gif for node in self._nodes.values())

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, gif: Gif) -> PosetNode:
        """Insert a GIF, wiring it below its minimal covering nodes.

        Average-case O(log S) for balanced posets per the paper;
        worst-case O(S).
        """
        if gif.gif_id in self._nodes:
            raise ValueError(f"GIF {gif.gif_id} already inserted")
        node = PosetNode(gif)
        parents = self._find_parents(node)
        children = self._find_children(node, parents)
        for parent in parents:
            parent.children.add(node)
            parent._ordered = None
            node.parents.add(parent)
        for child in children:
            # The new node slots between its parents and these children:
            # drop any direct parent->child edges it now mediates.
            for parent in parents:
                if child in parent.children:
                    parent.children.discard(child)
                    parent._ordered = None
                    child.parents.discard(parent)
            node.children.add(child)
            child.parents.add(node)
        node._ordered = None
        self._nodes[gif.gif_id] = node
        return node

    def _find_parents(self, node: PosetNode) -> List[PosetNode]:
        """Minimal existing nodes whose profiles cover the new node."""
        parents: List[PosetNode] = []
        seen: Set[int] = set()
        queue = deque([self.root])
        while queue:
            candidate = queue.popleft()
            covering_children = [
                child
                for child in candidate.children
                if self._covers(child, node)
            ]
            if covering_children:
                for child in covering_children:
                    if id(child) not in seen:
                        seen.add(id(child))
                        queue.append(child)
            else:
                parents.append(candidate)
        # Deduplicate while keeping deterministic order.
        unique: List[PosetNode] = []
        added: Set[int] = set()
        for parent in parents:
            if id(parent) not in added:
                added.add(id(parent))
                unique.append(parent)
        return unique

    def _find_children(
        self, node: PosetNode, parents: Iterable[PosetNode]
    ) -> List[PosetNode]:
        """Maximal existing nodes the new node covers."""
        children: List[PosetNode] = []
        seen: Set[int] = set()
        queue = deque()
        for parent in parents:
            for child in parent.children:
                if id(child) not in seen:
                    seen.add(id(child))
                    queue.append(child)
        while queue:
            candidate = queue.popleft()
            if self._covers(node, candidate):
                children.append(candidate)
                # Its descendants are covered transitively; skip them.
                continue
            for child in candidate.children:
                if id(child) not in seen:
                    seen.add(id(child))
                    queue.append(child)
        return children

    # ------------------------------------------------------------------
    # Removal
    # ------------------------------------------------------------------
    def remove(self, gif: Gif) -> None:
        """Unlink a GIF, splicing its parents to its children."""
        node = self._nodes.pop(gif.gif_id)
        for parent in node.parents:
            parent.children.discard(node)
            parent._ordered = None
        for child in node.children:
            child.parents.discard(node)
        for child in node.children:
            # Re-attach orphaned children to the removed node's parents,
            # unless another path already covers them.
            if not child.parents:
                for parent in node.parents:
                    parent.children.add(child)
                    parent._ordered = None
                    child.parents.add(parent)

    # ------------------------------------------------------------------
    # Queries used by CRAM
    # ------------------------------------------------------------------
    def covered_gifs(self, gif: Gif) -> List[Gif]:
        """Direct children (covered GIFs) — O(1) poset lookup (opt. 3).

        Returned in ascending ``gif_id`` order: the caller merges the
        selection it makes from this list, and profile-merge order must
        not depend on set iteration order (heap layout).
        """
        node = self._nodes[gif.gif_id]
        return [
            child.gif for child in _ordered_children(node) if child.gif is not None
        ]

    def closest_partner(
        self,
        gif: Gif,
        metric: ClosenessMetric,
        blacklist: Optional[Set[frozenset]] = None,
        on_candidate: Optional[Callable[[Gif, float], None]] = None,
    ) -> Tuple[Optional[Gif], float]:
        """Find the partner GIF with the highest non-zero closeness.

        For prunable metrics the traversal starts at the root, skips
        zero-closeness subtrees, and stops descending once the
        closeness decreases (paper §IV-C.2).  For XOR every node is
        evaluated.  ``on_candidate`` is invoked for every evaluated
        pair — CRAM uses it to opportunistically refresh other GIFs'
        cached partners, and the pruning benchmark uses the metric's
        evaluation counter.
        """
        blacklist = blacklist or set()
        best_gif: Optional[Gif] = None
        best_value = 0.0

        def consider(candidate: Gif, value: float) -> None:
            nonlocal best_gif, best_value
            if on_candidate is not None:
                on_candidate(candidate, value)
            if blacklist and frozenset((gif.gif_id, candidate.gif_id)) in blacklist:
                return
            if value > best_value or (
                value == best_value
                and best_gif is not None
                and value > 0
                and candidate.gif_id < best_gif.gif_id
            ):
                best_gif = candidate
                best_value = value

        if metric.prunable:
            self._pruned_scan(gif, metric, consider)
        else:
            # Non-prunable (XOR): every node is evaluated anyway, so do
            # it as one batched row — same values, same order, same
            # evaluation count, but one pass through the fused kernel.
            candidates = [
                node.gif
                for node in self._nodes.values()
                if node.gif.gif_id != gif.gif_id
            ]
            row = metric.closeness_row(
                gif.profile, [candidate.profile for candidate in candidates]
            )
            for candidate, value in zip(candidates, row):
                consider(candidate, value)
        return best_gif, best_value

    def _pruned_scan(
        self,
        gif: Gif,
        metric: ClosenessMetric,
        consider: Callable[[Gif, float], None],
    ) -> None:
        """Breadth-first descent with zero- and decrease-pruning.

        Children are visited in ascending ``gif_id`` order — the poset
        stores edges in sets, and which parent reaches a shared child
        first decides the ``parent_value`` its pruning test uses, so an
        id-hash-ordered traversal would make the evaluation count (and
        the symmetric partner-cache updates) depend on heap layout.

        The walk is level-batched: BFS processes the frontier one full
        wave at a time, and which nodes form wave ``k+1`` depends only
        on wave ``k``'s prune verdicts, so evaluating a whole wave as
        one ``closeness_row`` call (one vectorized row per visited
        level) preserves the exact per-pair values, evaluation count,
        and ``consider`` order of the node-at-a-time loop.
        """
        seen: Set[int] = set()
        wave: List[Tuple[PosetNode, Optional[float]]] = []
        for child in _ordered_children(self.root):
            if id(child) not in seen:
                seen.add(id(child))
                wave.append((child, None))  # None: no parent value yet
        gif_id = gif.gif_id
        while wave:
            profiles = [
                node.gif.profile for node, _ in wave if node.gif.gif_id != gif_id
            ]
            if len(profiles) == 1:
                # A row of one gains nothing over a direct call.
                row = None
            else:
                row = metric.closeness_row(gif.profile, profiles)
            position = 0
            next_wave: List[Tuple[PosetNode, Optional[float]]] = []
            for node, parent_value in wave:
                if node.gif.gif_id == gif_id:
                    value = None  # do not pair with self here (CRAM handles
                    # self-pairing separately); still descend through it.
                else:
                    if row is None:
                        value = metric(gif.profile, node.gif.profile)
                    else:
                        value = row[position]
                        position += 1
                    consider(node.gif, value)
                    if approx_zero(value):
                        continue  # empty relation: whole subtree is empty too
                    if parent_value is not None and value < parent_value:
                        continue  # closeness started to decrease: prune
                next_value = parent_value if value is None else value
                for child in _ordered_children(node):
                    if id(child) not in seen:
                        seen.add(id(child))
                        next_wave.append((child, next_value))
            wave = next_wave

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raises AssertionError on breakage.

        Used by tests and property-based checks: every parent must
        cover every child, edges must be symmetric, and every non-root
        node must be reachable from the root.
        """
        reachable: Set[int] = set()
        queue = deque([self.root])
        while queue:
            node = queue.popleft()
            for child in node.children:
                assert node in child.parents, "child missing back-edge"
                assert node.covers(child) or node.is_root, (
                    f"parent {node!r} does not cover child {child!r}"
                )
                if id(child) not in reachable:
                    reachable.add(id(child))
                    queue.append(child)
        for node in self._nodes.values():
            assert id(node) in reachable, f"{node!r} unreachable from root"
            for parent in node.parents:
                assert node in parent.children, "parent missing forward-edge"
