"""Groups of Identical Filters — CRAM optimization 1 (paper §IV-C.1).

Subscriptions whose bit-vector profiles are identical are
interchangeable for allocation purposes, so CRAM collapses them into a
single *GIF* and clusters GIF pairs instead of subscription pairs.  In
the paper's 8,000-subscription experiments this cut the working set S
by up to 61%; the ``tab-gif`` benchmark measures the same ratio on our
workload.

A GIF owns a list of allocation *units*.  Initially each unit is one
subscription; within-GIF clustering (the "GIF paired with itself" case)
replaces several units with one merged unit, and cross-GIF clustering
moves units out into a new GIF keyed by the merged profile.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.profiles import SubscriptionProfile
from repro.core.units import AllocationUnit

_gif_ids = itertools.count()


class Gif:
    """A group of subscriptions sharing one bit-vector profile."""

    __slots__ = ("gif_id", "profile", "units", "_lightest")

    def __init__(self, profile: SubscriptionProfile, units: Iterable[AllocationUnit]):
        self.gif_id = next(_gif_ids)
        self.profile = profile
        self.units: List[AllocationUnit] = list(units)
        self._lightest: Optional[AllocationUnit] = None

    # ------------------------------------------------------------------
    # Unit bookkeeping
    # ------------------------------------------------------------------
    @property
    def unit_count(self) -> int:
        return len(self.units)

    @property
    def subscription_count(self) -> int:
        return sum(unit.subscription_count for unit in self.units)

    @property
    def total_bandwidth(self) -> float:
        return sum(unit.delivery_bandwidth for unit in self.units)

    def is_empty(self) -> bool:
        return not self.units

    def units_ascending_bandwidth(self) -> List[AllocationUnit]:
        """Units ordered lightest first (deterministic tie-break)."""
        return sorted(self.units, key=lambda unit: (unit.delivery_bandwidth, unit.unit_id))

    def lightest_unit(self) -> AllocationUnit:
        """The least-loaded unit — the one the paper clusters first.

        Cached until the unit list changes; CRAM asks for it on every
        clustering attempt touching the GIF.
        """
        if not self.units:
            raise ValueError(f"GIF {self.gif_id} has no units")
        if self._lightest is None:
            self._lightest = min(
                self.units, key=lambda unit: (unit.delivery_bandwidth, unit.unit_id)
            )
        return self._lightest

    def remove_units(self, units: Sequence[AllocationUnit]) -> None:
        doomed = {unit.unit_id for unit in units}
        self.units = [unit for unit in self.units if unit.unit_id not in doomed]
        self._lightest = None

    def add_unit(self, unit: AllocationUnit) -> None:
        self.units.append(unit)
        self._lightest = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Gif(id={self.gif_id}, units={self.unit_count}, "
            f"subs={self.subscription_count}, card={self.profile.cardinality})"
        )


def build_gifs(units: Iterable[AllocationUnit]) -> List[Gif]:
    """Group units by identical bit-vector profiles.

    Returns one GIF per distinct profile pattern, preserving the first-
    seen order so runs are deterministic.
    """
    groups: Dict[Tuple, List[AllocationUnit]] = {}
    profiles: Dict[Tuple, SubscriptionProfile] = {}
    for unit in units:
        key = unit.profile.signature()
        if key not in groups:
            groups[key] = []
            profiles[key] = unit.profile
        groups[key].append(unit)
    return [Gif(profiles[key], members) for key, members in groups.items()]


def gif_reduction_ratio(subscription_count: int, gif_count: int) -> float:
    """Fraction of the pool removed by GIF grouping (paper: up to 0.61)."""
    if subscription_count == 0:
        return 0.0
    return 1.0 - gif_count / subscription_count
