"""Deterministic fault plans for the simulated overlay.

A :class:`FaultPlan` is a *schedule* of infrastructure faults — broker
crashes/recoveries and link failures — plus two continuous degradation
knobs (per-transmission message loss and latency jitter).  Plans are
pure data: they carry no network references and every stochastic
choice (which brokers crash, which messages drop) derives from a
:class:`~repro.sim.rng.SeededRng`, so a plan replayed on the same
network produces bit-identical fault timelines.

The :class:`~repro.pubsub.faults.FaultInjector` executes a plan on a
live :class:`~repro.pubsub.network.PubSubNetwork`; an **empty** plan
installed on a network is a strict no-op — allocations, metrics, and
evaluation counters stay bit-identical to a run without any injector
(pinned by ``tests/test_fault_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.sim.rng import SeededRng

#: Fault event kinds.
CRASH = "crash"
RECOVER = "recover"
LINK_DOWN = "link-down"
LINK_UP = "link-up"

_KINDS: Tuple[str, ...] = (CRASH, RECOVER, LINK_DOWN, LINK_UP)

#: Stable tie-break order for events sharing a timestamp: recoveries
#: before crashes so a zero-downtime flap never leaves a broker dead.
_KIND_ORDER: Dict[str, int] = {RECOVER: 0, LINK_UP: 1, CRASH: 2, LINK_DOWN: 3}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: a kind, a virtual time, and a target.

    ``target`` is ``(broker_id,)`` for crash/recover and the sorted
    ``(a, b)`` pair for link events.
    """

    time: float
    kind: str
    target: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; pick from {_KINDS}")
        if self.time < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time}")
        arity = 2 if self.kind in (LINK_DOWN, LINK_UP) else 1
        if len(self.target) != arity:
            raise ValueError(
                f"{self.kind} targets {arity} endpoint(s), got {self.target!r}"
            )

    @property
    def sort_key(self) -> Tuple[float, int, Tuple[str, ...]]:
        return (self.time, _KIND_ORDER[self.kind], self.target)


@dataclass
class FaultPlan:
    """A deterministic fault schedule plus continuous degradation knobs.

    Explicit events are added with the builder methods
    (:meth:`crash`, :meth:`recover`, :meth:`link_down`, :meth:`link_up`);
    ``crash_fraction`` additionally generates a seeded batch of broker
    crashes once the broker population is known (:meth:`schedule_for`).

    Parameters
    ----------
    loss_rate:
        Probability that any single transmission (one link traversal)
        is silently dropped.  ``0.0`` disables the loss draw entirely.
    jitter:
        Maximum extra one-way latency in seconds, drawn uniformly per
        transmission.  ``0.0`` disables the jitter draw entirely.
    crash_fraction:
        Fraction of the broker population to crash (at least one broker
        when positive), sampled deterministically from ``seed``.
    crash_start / crash_stagger:
        Virtual time of the first generated crash and the spacing
        between consecutive ones.
    downtime:
        Seconds until a generated crash recovers; ``0`` means the
        broker stays down for the rest of the run.
    seed:
        Master seed for victim sampling (the injector derives its own
        transit stream from the seed it is installed with).
    """

    events: List[FaultEvent] = field(default_factory=list)
    loss_rate: float = 0.0
    jitter: float = 0.0
    crash_fraction: float = 0.0
    crash_start: float = 5.0
    crash_stagger: float = 1.0
    downtime: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {self.loss_rate}")
        if self.jitter < 0.0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")
        if not 0.0 <= self.crash_fraction <= 1.0:
            raise ValueError(
                f"crash_fraction must be in [0, 1], got {self.crash_fraction}"
            )

    # ------------------------------------------------------------------
    # Builder API (each returns self so plans chain fluently)
    # ------------------------------------------------------------------
    def crash(self, time: float, broker_id: str, downtime: float = 0.0) -> "FaultPlan":
        """Crash ``broker_id`` at ``time``; recover after ``downtime`` if > 0."""
        self.events.append(FaultEvent(time, CRASH, (broker_id,)))
        if downtime > 0:
            self.events.append(FaultEvent(time + downtime, RECOVER, (broker_id,)))
        return self

    def recover(self, time: float, broker_id: str) -> "FaultPlan":
        self.events.append(FaultEvent(time, RECOVER, (broker_id,)))
        return self

    def link_down(self, time: float, first: str, second: str,
                  downtime: float = 0.0) -> "FaultPlan":
        """Cut the ``first``–``second`` link at ``time`` (both directions)."""
        pair = tuple(sorted((first, second)))
        self.events.append(FaultEvent(time, LINK_DOWN, pair))
        if downtime > 0:
            self.events.append(FaultEvent(time + downtime, LINK_UP, pair))
        return self

    def link_up(self, time: float, first: str, second: str) -> "FaultPlan":
        self.events.append(FaultEvent(time, LINK_UP, tuple(sorted((first, second)))))
        return self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """True when installing this plan cannot perturb the run."""
        return (
            not self.events
            and self.crash_fraction <= 0.0
            and self.loss_rate <= 0.0
            and self.jitter <= 0.0
        )

    def schedule_for(self, broker_ids: Sequence[str]) -> List[FaultEvent]:
        """Materialize the full event schedule for a broker population.

        Explicit events pass through unchanged; ``crash_fraction``
        generates staggered crashes of a seeded sample of
        ``broker_ids`` (recovering after ``downtime`` when set).  The
        result is sorted by ``(time, kind, target)`` so injection order
        is independent of construction order.
        """
        events = list(self.events)
        if self.crash_fraction > 0.0 and broker_ids:
            ordered = sorted(broker_ids)
            count = min(
                len(ordered), max(1, round(self.crash_fraction * len(ordered)))
            )
            rng = SeededRng(self.seed, "faults", "plan")
            victims = rng.sample(ordered, count)
            for index, broker_id in enumerate(victims):
                crash_at = self.crash_start + index * self.crash_stagger
                events.append(FaultEvent(crash_at, CRASH, (broker_id,)))
                if self.downtime > 0:
                    events.append(
                        FaultEvent(crash_at + self.downtime, RECOVER, (broker_id,))
                    )
        return sorted(events, key=lambda event: event.sort_key)

    # ------------------------------------------------------------------
    # CLI spec parsing
    # ------------------------------------------------------------------
    _SPEC_KEYS = ("crash", "start", "stagger", "downtime", "loss", "jitter", "seed")

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a compact ``key=value[,key=value...]`` fault spec.

        Keys: ``crash`` (fraction of brokers to crash), ``start``
        (first crash time), ``stagger`` (spacing), ``downtime``
        (recovery delay, 0 = stay down), ``loss`` (per-transmission
        drop probability), ``jitter`` (max extra latency, seconds),
        ``seed`` (victim-sampling seed).  An empty spec or ``none``
        yields an empty plan.

        >>> FaultPlan.from_spec("crash=0.1,downtime=30,loss=0.01").loss_rate
        0.01
        """
        plan = cls()
        text = spec.strip()
        if not text or text.lower() == "none":
            return plan
        for part in text.split(","):
            if "=" not in part:
                raise ValueError(
                    f"malformed fault spec item {part!r} (expected key=value)"
                )
            key, _, raw = part.partition("=")
            key = key.strip().lower()
            raw = raw.strip()
            if key not in cls._SPEC_KEYS:
                raise ValueError(
                    f"unknown fault spec key {key!r} (known: {', '.join(cls._SPEC_KEYS)})"
                )
            try:
                value = int(raw) if key == "seed" else float(raw)
            except ValueError as exc:
                raise ValueError(f"fault spec {key}={raw!r} is not numeric") from exc
            if key == "crash":
                plan.crash_fraction = float(value)
            elif key == "start":
                plan.crash_start = float(value)
            elif key == "stagger":
                plan.crash_stagger = float(value)
            elif key == "downtime":
                plan.downtime = float(value)
            elif key == "loss":
                plan.loss_rate = float(value)
            elif key == "jitter":
                plan.jitter = float(value)
            else:
                plan.seed = int(value)
        # Re-run the dataclass validation on the mutated fields.
        plan.__post_init__()
        return plan
