"""Seeded randomness — public alias of :mod:`repro.core.rng`.

The implementation moved to ``core`` (the bottom layer of the package
DAG) so core allocators can use :class:`SeededRng` without importing
upward into ``sim``; this module keeps the historical import path
working for the rest of the codebase and downstream users.
"""

from __future__ import annotations

from repro.core.rng import SeededRng, derive_seed

__all__ = ["SeededRng", "derive_seed"]
