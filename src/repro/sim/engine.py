"""A minimal, deterministic discrete-event simulation engine.

The engine is a priority queue of timestamped callbacks.  Ties are
broken by insertion order, which keeps runs bit-for-bit reproducible
regardless of hash randomization or dict ordering quirks.

Two fast paths keep the event loop cheap at scale without changing
the execution order:

* **Same-timestamp batching** — once an event fires, every further
  event sharing its timestamp is drained in one inner loop that skips
  the ``until``-bound re-check and the clock write (clustered arrivals
  are the common case under fixed link latency).
* **Cancelled-event compaction** — cancellations are O(1) flag flips,
  but each cancelled event still costs a heap pop later.  The engine
  counts cancellations still in the heap and rebuilds the heap without
  them once they dominate, so cancel-heavy workloads (BIR aggregation
  timers, retry deadlines) stop paying per-corpse log-time pops.

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
>>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
>>> sim.run()
>>> fired
[1.0, 5.0]
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

#: Compaction threshold: rebuild the heap once at least this many
#: cancelled events linger in it *and* they make up half the heap.
#: The floor keeps tiny heaps from compacting constantly; the ratio
#: keeps compaction amortized O(1) per cancellation.
COMPACT_MIN_CANCELLED = 64


class SimulationError(Exception):
    """Raised when the engine is used inconsistently."""


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and can be
    cancelled before they fire.  A cancelled event stays in the heap but
    is skipped when popped, which keeps cancellation O(1); the owning
    simulator counts still-queued cancellations so it can compact the
    heap when they pile up.
    """

    __slots__ = ("time", "callback", "cancelled", "_sim")

    def __init__(self, time: float, callback: Callable[[], None],
                 sim: Optional["Simulator"] = None):
        self.time = time
        self.callback = callback
        self.cancelled = False
        #: Owning simulator while the event is queued; cleared when the
        #: event leaves the heap so late cancels don't skew the count.
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, {state})"


class Simulator:
    """Virtual-time event loop.

    Parameters
    ----------
    start_time:
        Initial value of the clock.  Experiments usually start at 0.
    """

    def __init__(self, start_time: float = 0.0):
        self._now = start_time
        self._heap: List[Tuple[float, int, Event]] = []
        self._sequence = itertools.count()
        self._running = False
        self._events_processed = 0
        self._cancelled_in_heap = 0
        self._batched_events = 0
        self._compactions = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (skips cancelled events)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued (cancelled events included
        until the next compaction removes them)."""
        return len(self._heap)

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still occupying heap slots."""
        return self._cancelled_in_heap

    @property
    def batched_events(self) -> int:
        """Events executed by the same-timestamp batch fast path."""
        return self._batched_events

    @property
    def heap_compactions(self) -> int:
        """Times the cancelled-event compaction rebuilt the heap."""
        return self._compactions

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute virtual time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        event = Event(time, callback, self)
        heapq.heappush(self._heap, (time, next(self._sequence), event))
        return event

    def _note_cancelled(self) -> None:
        """Record one more cancelled-but-queued event (see :meth:`Event.cancel`)."""
        self._cancelled_in_heap += 1

    def _maybe_compact(self) -> None:
        """Drop cancelled events once they dominate the heap.

        Rebuilding filters corpses and re-heapifies in place; the
        (time, sequence) total order is untouched, so pop order — and
        therefore every simulation outcome — is exactly preserved.
        """
        cancelled = self._cancelled_in_heap
        if cancelled < COMPACT_MIN_CANCELLED or 2 * cancelled < len(self._heap):
            return
        heap = self._heap
        live = [entry for entry in heap if not entry[2].cancelled]
        for entry in heap:
            event = entry[2]
            if event.cancelled:
                event._sim = None
        heap[:] = live
        heapq.heapify(heap)
        self._cancelled_in_heap = 0
        self._compactions += 1

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events in timestamp order.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time.  Events scheduled
            exactly at ``until`` are executed.  The clock is advanced to
            ``until`` when the queue drains early, so repeated
            ``run(until=...)`` calls tile time contiguously.
        max_events:
            Safety valve for tests; stop after this many callbacks.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        executed = 0
        heap = self._heap
        pop = heapq.heappop
        processed = self._events_processed
        batched = self._batched_events
        try:
            while heap:
                if self._cancelled_in_heap >= COMPACT_MIN_CANCELLED:
                    self._maybe_compact()
                    if not heap:
                        break
                time, _seq, event = heap[0]
                if until is not None and time > until:
                    break
                pop(heap)
                if event.cancelled:
                    self._cancelled_in_heap -= 1
                    event._sim = None
                    continue
                event._sim = None
                self._now = time
                event.callback()
                processed += 1
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
                # Same-timestamp batch: ties are within any until-bound
                # by construction, so drain them without re-checking it
                # or rewriting the clock.  Ties scheduled *by* a batched
                # callback carry a later sequence number and are reached
                # by this same loop, preserving insertion order.
                while heap and heap[0][0] == time:
                    event = pop(heap)[2]
                    if event.cancelled:
                        self._cancelled_in_heap -= 1
                        event._sim = None
                        continue
                    event._sim = None
                    event.callback()
                    processed += 1
                    executed += 1
                    batched += 1
                    if max_events is not None and executed >= max_events:
                        break
                else:
                    continue
                break  # max_events hit inside the batch loop
        finally:
            self._events_processed = processed
            self._batched_events = batched
            self._running = False
        if until is not None and self._now < until:
            self._now = until

    def drain(self) -> None:
        """Run until the queue is completely empty."""
        self.run()
