"""A minimal, deterministic discrete-event simulation engine.

The engine is a priority queue of timestamped callbacks.  Ties are
broken by insertion order, which keeps runs bit-for-bit reproducible
regardless of hash randomization or dict ordering quirks.

Two interchangeable queue structures implement that contract:

* :class:`Simulator` — the reference implementation, a binary heap of
  ``(time, sequence, event)`` tuples (``heapq``).  Every push and pop
  costs O(log n) tuple comparisons, which dominates once tens of
  thousands of timers are pending.
* :class:`CalendarSimulator` — a bucketed *calendar queue* (Brown,
  CACM 1988): virtual time is tiled into fixed-width buckets and an
  event lands in ``bucket[int(time / width) % count]``.  Scheduling
  and popping are O(1) for the uniform-ish event populations a
  pub/sub simulation produces, independent of how many far-future
  timers are pending.  Buckets resize automatically when occupancy
  skews; FIFO order inside a bucket is kept by the same ``(time,
  sequence)`` key, so the execution order is bit-identical to the
  heap's (pinned by ``tests/test_engine_equivalence.py``).

The engine to use is selected by :func:`make_simulator`, driven by
``RunConfig(engine=...)`` or the ``REPRO_ENGINE`` environment variable
(see :mod:`repro.core.config`); the heap stays the default.

Two fast paths keep either event loop cheap at scale without changing
the execution order:

* **Same-timestamp batching** — once an event fires, every further
  event sharing its timestamp is drained in one inner loop that skips
  the ``until``-bound re-check and the clock write (clustered arrivals
  are the common case under fixed link latency).
* **Cancelled-event compaction** — cancellations are O(1) flag flips,
  but each cancelled event still costs a queue pop later.  The engine
  counts cancellations still queued and rebuilds the queue without
  them once they dominate, so cancel-heavy workloads (BIR aggregation
  timers, retry deadlines) stop paying per-corpse pops.  Events
  dropped by a rebuild have their ``Event._sim`` back-reference
  cleared so a late ``cancel()`` cannot skew the cancellation count.

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
>>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
>>> sim.run()
>>> fired
[1.0, 5.0]
"""

from __future__ import annotations

import heapq
import itertools
from bisect import insort
from sys import maxsize
from typing import Callable, List, Optional, Tuple

from repro.core.config import resolve_engine

#: Compaction threshold: rebuild the queue once at least this many
#: cancelled events linger in it *and* they make up half the queue.
#: The floor keeps tiny queues from compacting constantly; the ratio
#: keeps compaction amortized O(1) per cancellation.
COMPACT_MIN_CANCELLED = 64

#: Calendar queue geometry: the bucket count stays a power of two in
#: ``[CALENDAR_MIN_BUCKETS, ...)`` and doubles/halves around a target
#: occupancy of a few events per bucket.
CALENDAR_MIN_BUCKETS = 16

#: Entries sampled from the queue head when a resize re-estimates the
#: bucket width from observed inter-event gaps.
CALENDAR_WIDTH_SAMPLE = 64


class SimulationError(Exception):
    """Raised when the engine is used inconsistently."""


class Event:
    """A scheduled callback.

    Events are returned by :meth:`SimulatorCore.schedule` and can be
    cancelled before they fire.  A cancelled event stays queued but is
    skipped when popped, which keeps cancellation O(1); the owning
    simulator counts still-queued cancellations so it can compact the
    queue when they pile up.
    """

    __slots__ = ("time", "callback", "cancelled", "_sim")

    def __init__(self, time: float, callback: Callable[[], None],
                 sim: Optional["SimulatorCore"] = None):
        self.time = time
        self.callback = callback
        self.cancelled = False
        #: Owning simulator while the event is queued; cleared when the
        #: event leaves the queue (popped, or dropped by a compaction /
        #: bucket rebuild) so late cancels don't skew the count.
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, {state})"


class SimulatorCore:
    """Clock, counters, and scheduling contract shared by both engines.

    Subclasses own the queue structure and implement
    :meth:`schedule_at`, :meth:`run`, :attr:`pending`, and
    :meth:`_maybe_compact`; everything observable (clock semantics,
    validation, counter meanings) lives here so the two engines cannot
    drift apart.
    """

    __slots__ = (
        "_now",
        "_sequence",
        "_running",
        "_events_processed",
        "_cancelled_in_heap",
        "_batched_events",
        "_compactions",
    )

    def __init__(self, start_time: float = 0.0):
        self._now = start_time
        self._sequence = itertools.count()
        self._running = False
        self._events_processed = 0
        self._cancelled_in_heap = 0
        self._batched_events = 0
        self._compactions = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (skips cancelled events)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued (cancelled events included
        until the next compaction removes them)."""
        raise NotImplementedError

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still occupying queue slots."""
        return self._cancelled_in_heap

    @property
    def batched_events(self) -> int:
        """Events executed by the same-timestamp batch fast path."""
        return self._batched_events

    @property
    def heap_compactions(self) -> int:
        """Times the cancelled-event compaction rebuilt the queue."""
        return self._compactions

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute virtual time."""
        raise NotImplementedError

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events in timestamp order (see subclass docstrings)."""
        raise NotImplementedError

    def _note_cancelled(self) -> None:
        """Record one more cancelled-but-queued event (see :meth:`Event.cancel`)."""
        self._cancelled_in_heap += 1

    def _maybe_compact(self) -> None:
        raise NotImplementedError

    def _check_schedule_time(self, time: float) -> None:
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )

    def drain(self) -> None:
        """Run until the queue is completely empty."""
        self.run()


class Simulator(SimulatorCore):
    """Virtual-time event loop over a binary heap (the reference engine).

    Parameters
    ----------
    start_time:
        Initial value of the clock.  Experiments usually start at 0.
    """

    __slots__ = ("_heap",)

    def __init__(self, start_time: float = 0.0):
        super().__init__(start_time)
        self._heap: List[Tuple[float, int, Event]] = []

    @property
    def pending(self) -> int:
        return len(self._heap)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute virtual time."""
        self._check_schedule_time(time)
        event = Event(time, callback, self)
        heapq.heappush(self._heap, (time, next(self._sequence), event))
        return event

    def _maybe_compact(self) -> None:
        """Drop cancelled events once they dominate the heap.

        Rebuilding filters corpses — clearing each one's ``_sim``
        back-reference as it is dropped — and re-heapifies in place;
        the (time, sequence) total order is untouched, so pop order —
        and therefore every simulation outcome — is exactly preserved.
        """
        cancelled = self._cancelled_in_heap
        if cancelled < COMPACT_MIN_CANCELLED or 2 * cancelled < len(self._heap):
            return
        heap = self._heap
        live = []
        for entry in heap:
            if entry[2].cancelled:
                entry[2]._sim = None
            else:
                live.append(entry)
        heap[:] = live
        heapq.heapify(heap)
        self._cancelled_in_heap = 0
        self._compactions += 1

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events in timestamp order.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time.  Events scheduled
            exactly at ``until`` are executed.  The clock is advanced to
            ``until`` when the queue drains early, so repeated
            ``run(until=...)`` calls tile time contiguously.
        max_events:
            Safety valve for tests; stop after this many callbacks.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        executed = 0
        heap = self._heap
        pop = heapq.heappop
        processed = self._events_processed
        batched = self._batched_events
        try:
            while heap:
                if self._cancelled_in_heap >= COMPACT_MIN_CANCELLED:
                    self._maybe_compact()
                    if not heap:
                        break
                time, _seq, event = heap[0]
                if until is not None and time > until:
                    break
                pop(heap)
                if event.cancelled:
                    self._cancelled_in_heap -= 1
                    event._sim = None
                    continue
                event._sim = None
                self._now = time
                event.callback()
                processed += 1
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
                # Same-timestamp batch: ties are within any until-bound
                # by construction, so drain them without re-checking it
                # or rewriting the clock.  Ties scheduled *by* a batched
                # callback carry a later sequence number and are reached
                # by this same loop, preserving insertion order.
                while heap and heap[0][0] == time:
                    event = pop(heap)[2]
                    if event.cancelled:
                        self._cancelled_in_heap -= 1
                        event._sim = None
                        continue
                    event._sim = None
                    event.callback()
                    processed += 1
                    executed += 1
                    batched += 1
                    if max_events is not None and executed >= max_events:
                        break
                else:
                    continue
                break  # max_events hit inside the batch loop
        finally:
            self._events_processed = processed
            self._batched_events = batched
            self._running = False
        if until is not None and self._now < until:
            self._now = until


#: Calendar entry: ``(time, sequence, event, virtual_bucket)``.  The
#: fourth field is the *unwrapped* bucket index ``int(time / width)``;
#: comparing it against the sweep cursor is an exact integer test for
#: "due on this sweep lap", immune to float rounding at bucket
#: boundaries.  Sorting still keys on ``(time, sequence)`` — the
#: sequence is unique, so the trailing fields are never compared.
_CalendarEntry = Tuple[float, int, Event, int]

#: Bound ``object.__new__`` for the calendar's inlined event
#: construction — skips the ``Event.__init__`` frame on the hottest
#: line in :meth:`CalendarSimulator.schedule_at` (the four slot
#: stores below mirror ``Event.__init__`` exactly).
_EVENT_NEW = object.__new__


class CalendarSimulator(SimulatorCore):
    """Virtual-time event loop over a bucketed calendar queue.

    Executes the exact event order of :class:`Simulator` — same
    ``(time, sequence)`` total order, same clock semantics, same
    counters — with O(1) amortized scheduling and popping.  A sweep
    cursor walks buckets in virtual-bucket order; inserts behind the
    cursor pull it back, and a lap that finds nothing due jumps
    straight to the globally earliest entry, so sparse far-future
    regions cost one scan instead of one step per empty bucket.

    Resizes double (or halve) the bucket count when occupancy drifts
    outside a few events per bucket and re-estimate the bucket width
    from the observed inter-event gaps near the queue head; rebuilds
    also purge cancelled corpses, clearing their ``Event._sim`` like
    the heap's compaction does.
    """

    __slots__ = (
        "_width",
        "_bucket_count",
        "_buckets",
        "_size",
        "_cursor_virtual",
        "_grow_at",
        "_next_seq",
        "_resizes",
    )

    def __init__(self, start_time: float = 0.0):
        super().__init__(start_time)
        self._width = 1.0
        self._bucket_count = CALENDAR_MIN_BUCKETS
        self._buckets: List[List[_CalendarEntry]] = [
            [] for _ in range(self._bucket_count)
        ]
        self._size = 0
        self._cursor_virtual = int(start_time / self._width)
        #: Cached ``2 * bucket_count`` growth trigger (hot-path saving).
        self._grow_at = 2 * self._bucket_count
        #: Bound ``__next__`` of the shared sequence counter (hot-path
        #: saving; the counter object itself still lives in the base).
        self._next_seq = self._sequence.__next__
        self._resizes = 0

    @property
    def pending(self) -> int:
        return self._size

    @property
    def bucket_count(self) -> int:
        """Current number of calendar buckets (diagnostic)."""
        return self._bucket_count

    @property
    def bucket_width(self) -> float:
        """Current bucket width in virtual seconds (diagnostic)."""
        return self._width

    @property
    def bucket_resizes(self) -> int:
        """Times the calendar rebuilt its bucket array (diagnostic)."""
        return self._resizes

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute virtual time."""
        if time < self._now:
            self._check_schedule_time(time)
        event = _EVENT_NEW(Event)
        event.time = time
        event.callback = callback
        event.cancelled = False
        event._sim = self
        virtual = int(time / self._width)
        bucket = self._buckets[virtual % self._bucket_count]
        # Events arrive mostly in increasing time order, so the append
        # fast path covers the common case (sequence numbers strictly
        # increase, so an equal-or-later time always sorts last);
        # insort keeps the bucket sorted by (time, sequence) otherwise.
        if bucket and time < bucket[-1][0]:
            insort(bucket, (time, self._next_seq(), event, virtual))
        else:
            bucket.append((time, self._next_seq(), event, virtual))
        size = self._size + 1
        self._size = size
        if virtual < self._cursor_virtual:
            # Scheduled behind the sweep cursor (the cursor ran ahead
            # over an empty region): pull the cursor back so the new
            # event is not missed.
            self._cursor_virtual = virtual
        if size > self._grow_at:
            self._resize(self._bucket_count * 2)
        return event

    def _maybe_compact(self) -> None:
        """Purge cancelled corpses by rebuilding the current geometry."""
        cancelled = self._cancelled_in_heap
        if cancelled < COMPACT_MIN_CANCELLED or 2 * cancelled < self._size:
            return
        self._resize(self._bucket_count)
        self._compactions += 1

    def _resize(self, count: int) -> None:
        """Rebuild with ``count`` buckets and a re-estimated width.

        Entries keep their (time, sequence) identity; cancelled events
        are dropped with ``_sim`` cleared, exactly like the heap's
        compaction, so cancellation accounting stays consistent.
        """
        entries: List[_CalendarEntry] = []
        dropped = 0
        for bucket in self._buckets:
            for entry in bucket:
                event = entry[2]
                if event.cancelled:
                    event._sim = None
                    dropped += 1
                else:
                    entries.append(entry)
        entries.sort()
        self._cancelled_in_heap -= dropped
        self._size = len(entries)
        count = max(CALENDAR_MIN_BUCKETS, count)
        while count > CALENDAR_MIN_BUCKETS and count >= 4 * max(1, self._size):
            count //= 2
        width = self._estimate_width(entries)
        self._width = width
        self._bucket_count = count
        self._grow_at = 2 * count
        buckets: List[List[_CalendarEntry]] = [[] for _ in range(count)]
        for time, seq, event, _old_virtual in entries:
            virtual = int(time / width)
            buckets[virtual % count].append((time, seq, event, virtual))
        self._buckets = buckets
        if entries:
            self._cursor_virtual = int(entries[0][0] / width)
        else:
            self._cursor_virtual = int(self._now / width)
        self._resizes += 1

    def _estimate_width(self, entries: List[_CalendarEntry]) -> float:
        """Bucket width from inter-event gaps near the queue head.

        Aims for a handful of events per bucket: the average positive
        gap over a head sample, times a small multiplier.  Pure
        function of the queue contents, so resizes are deterministic.
        """
        sample = entries[:CALENDAR_WIDTH_SAMPLE]
        total = 0.0
        gaps = 0
        for i in range(1, len(sample)):
            gap = sample[i][0] - sample[i - 1][0]
            if gap > 0.0:
                total += gap
                gaps += 1
        if gaps == 0:
            return self._width
        width = 4.0 * total / gaps
        if width <= 0.0:  # pragma: no cover - defensive (gaps are > 0)
            return self._width
        return width

    def _locate_next(
        self, limit_virtual: Optional[int]
    ) -> Optional[List[_CalendarEntry]]:
        """Advance the sweep to the bucket holding the earliest entry.

        Returns that bucket with the globally next entry at index 0,
        or ``None`` once the sweep passes ``limit_virtual`` (the
        bucket of an ``until`` bound) without finding anything due —
        the caller then stops without paying for a full lap.  The
        cursor keeps the progress either way, so repeated bounded runs
        never rescan swept-empty regions.  Must not be called on an
        empty queue.
        """
        buckets = self._buckets
        count = self._bucket_count
        virtual = self._cursor_virtual
        scanned = 0
        while scanned < count:
            if limit_virtual is not None and virtual > limit_virtual:
                self._cursor_virtual = virtual
                return None
            bucket = buckets[virtual % count]
            if bucket and bucket[0][3] <= virtual:
                self._cursor_virtual = virtual
                return bucket
            virtual += 1
            scanned += 1
        # A full lap found nothing due: every entry is more than one
        # calendar year ahead.  Jump straight to the earliest one.
        best: Optional[List[_CalendarEntry]] = None
        for bucket in buckets:
            if bucket and (best is None or bucket[0] < best[0]):
                best = bucket
        assert best is not None, "empty calendar queue"
        self._cursor_virtual = best[0][3]
        return best

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events in timestamp order.

        Same contract as :meth:`Simulator.run`: events at exactly
        ``until`` execute, the clock advances to ``until`` when the
        queue drains early, and ``max_events`` stops after that many
        callbacks.  Ties share a bucket (equal time means equal
        virtual index), so a same-timestamp fan-out drains as one
        slice extraction instead of one front pop per event.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        processed = self._events_processed
        batched = self._batched_events
        # Sentinel bound: one plain integer compare per event instead
        # of a ``None`` test plus a second counter.
        stop_at = maxsize if max_events is None else processed + max_events
        try:
            while self._size:
                if self._cancelled_in_heap >= COMPACT_MIN_CANCELLED:
                    self._maybe_compact()
                    if not self._size:
                        break
                cursor = self._cursor_virtual
                bucket = self._buckets[cursor % self._bucket_count]
                if not bucket or bucket[0][3] > cursor:
                    # Bound the sweep by ``until``: every entry due at
                    # or before it has virtual index <= int(until /
                    # width), so a sweep past that bound proves nothing
                    # is due and the run can stop without a full lap.
                    limit = (
                        None if until is None else int(until / self._width)
                    )
                    bucket = self._locate_next(limit)
                    if bucket is None:
                        break
                time = bucket[0][0]
                if until is not None and time > until:
                    break
                # Drain every entry tied at ``time``.  The first live
                # callback of the group is the regular pop; the rest
                # count as batched, matching the heap's inner loop.
                # ``_now`` is set when the first live callback runs and
                # is already ``time`` for the rest of the group, so the
                # clock is observably identical to the heap's
                # store-per-event.  Callbacks may schedule new ties
                # (which insort at the evolving bucket front with later
                # sequence numbers) or trigger a resize (which rebuilds
                # the bucket array), so the bucket is reloaded after
                # every slice.
                first = True
                hit_max = False
                while True:
                    blen = len(bucket)
                    if blen == 1 or bucket[1][0] != time:
                        # Lone entry at this timestamp: pop directly,
                        # skipping the slice machinery.
                        event = bucket.pop(0)[2]
                        self._size -= 1
                        if event.cancelled:
                            self._cancelled_in_heap -= 1
                            event._sim = None
                        else:
                            event._sim = None
                            if first:
                                first = False
                                self._now = time
                            else:
                                batched += 1
                            event.callback()
                            processed += 1
                            if processed >= stop_at:
                                hit_max = True
                    elif stop_at == maxsize:
                        # Unbounded fast path: no per-event bound
                        # check, no slice-position tracking.
                        k = 2
                        while k < blen and bucket[k][0] == time:
                            k += 1
                        if k == blen:
                            # The whole bucket is one tie group (the
                            # common fan-out shape): take the list
                            # itself instead of copy-and-shift.
                            batch = bucket
                            bucket = self._buckets[
                                self._cursor_virtual % self._bucket_count
                            ] = []
                        else:
                            batch = bucket[:k]
                            del bucket[:k]
                        self._size -= k
                        for entry in batch:
                            event = entry[2]
                            if event.cancelled:
                                self._cancelled_in_heap -= 1
                                event._sim = None
                                continue
                            event._sim = None
                            if first:
                                first = False
                                self._now = time
                            else:
                                batched += 1
                            event.callback()
                            processed += 1
                    else:
                        k = 2
                        while k < blen and bucket[k][0] == time:
                            k += 1
                        batch = bucket[:k]
                        del bucket[:k]
                        self._size -= k
                        index = 0
                        for entry in batch:
                            index += 1
                            event = entry[2]
                            if event.cancelled:
                                self._cancelled_in_heap -= 1
                                event._sim = None
                                continue
                            event._sim = None
                            if first:
                                first = False
                                self._now = time
                            else:
                                batched += 1
                            event.callback()
                            processed += 1
                            if processed >= stop_at:
                                hit_max = True
                                if index < len(batch):
                                    self._reinsert(batch[index:])
                                break
                    if hit_max:
                        break
                    if not self._size:
                        break
                    bucket = self._buckets[
                        self._cursor_virtual % self._bucket_count
                    ]
                    if not bucket or bucket[0][0] != time:
                        break
                if hit_max:
                    break
        finally:
            self._events_processed = processed
            self._batched_events = batched
            self._running = False
        if until is not None and self._now < until:
            self._now = until

    def _reinsert(self, entries: List[_CalendarEntry]) -> None:
        """Put extracted-but-unexecuted entries back in the calendar.

        Only reached when ``max_events`` stops a run mid-tie-group.
        The entries hold the globally smallest (time, sequence) keys
        still pending, but a callback executed earlier in the group
        may have resized the calendar, so virtual indexes are
        recomputed against the current geometry instead of trusting
        the stale ones captured at extraction time.
        """
        width = self._width
        count = self._bucket_count
        for time, seq, event, _stale_virtual in entries:
            virtual = int(time / width)
            insort(self._buckets[virtual % count], (time, seq, event, virtual))
            self._size += 1
            if virtual < self._cursor_virtual:
                self._cursor_virtual = virtual


#: Engine name -> simulator class (the total set of engine choices).
ENGINES = {
    "heap": Simulator,
    "calendar": CalendarSimulator,
}


def make_simulator(engine: Optional[str] = None,
                   start_time: float = 0.0) -> SimulatorCore:
    """Build the simulator selected by ``engine``.

    ``None`` defers to the ``REPRO_ENGINE`` environment variable and
    then to the heap default — the same explicit > environment >
    default precedence every other ``RunConfig`` knob follows (see
    :func:`repro.core.config.resolve_engine`).
    """
    return ENGINES[resolve_engine(engine)](start_time)
