"""A minimal, deterministic discrete-event simulation engine.

The engine is a priority queue of timestamped callbacks.  Ties are
broken by insertion order, which keeps runs bit-for-bit reproducible
regardless of hash randomization or dict ordering quirks.

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
>>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
>>> sim.run()
>>> fired
[1.0, 5.0]
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple


class SimulationError(Exception):
    """Raised when the engine is used inconsistently."""


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and can be
    cancelled before they fire.  A cancelled event stays in the heap but
    is skipped when popped, which keeps cancellation O(1).
    """

    __slots__ = ("time", "callback", "cancelled")

    def __init__(self, time: float, callback: Callable[[], None]):
        self.time = time
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, {state})"


class Simulator:
    """Virtual-time event loop.

    Parameters
    ----------
    start_time:
        Initial value of the clock.  Experiments usually start at 0.
    """

    def __init__(self, start_time: float = 0.0):
        self._now = start_time
        self._heap: List[Tuple[float, int, Event]] = []
        self._sequence = itertools.count()
        self._running = False
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (skips cancelled events)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued, including cancelled ones."""
        return len(self._heap)

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute virtual time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        event = Event(time, callback)
        heapq.heappush(self._heap, (time, next(self._sequence), event))
        return event

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events in timestamp order.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time.  Events scheduled
            exactly at ``until`` are executed.  The clock is advanced to
            ``until`` when the queue drains early, so repeated
            ``run(until=...)`` calls tile time contiguously.
        max_events:
            Safety valve for tests; stop after this many callbacks.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        executed = 0
        try:
            while self._heap:
                time, _seq, event = self._heap[0]
                if until is not None and time > until:
                    break
                heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self._now = time
                event.callback()
                self._events_processed += 1
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until

    def drain(self) -> None:
        """Run until the queue is completely empty."""
        self.run()
