"""Deterministic discrete-event simulation substrate.

The paper evaluates on a 21-node cluster and the SciNet HPC platform.
This package replaces the physical testbeds with a virtual-time
discrete-event engine: brokers, clients, and links are simulation
actors, message transmission and matching consume virtual time, and all
randomness flows through seeded generators so every experiment is
exactly reproducible.
"""

from __future__ import annotations

from repro.sim.engine import (
    CalendarSimulator,
    Event,
    Simulator,
    SimulatorCore,
    make_simulator,
)
from repro.sim.estimator import BrokerLoadEstimator, LoadSample
from repro.sim.faults import FaultEvent, FaultPlan
from repro.sim.rng import SeededRng, derive_seed

__all__ = [
    "CalendarSimulator",
    "Event",
    "Simulator",
    "SimulatorCore",
    "make_simulator",
    "BrokerLoadEstimator",
    "LoadSample",
    "FaultEvent",
    "FaultPlan",
    "SeededRng",
    "derive_seed",
]
