"""Fitted per-broker load estimators over deterministic counter streams.

The online reallocation scheduler (see :mod:`repro.experiments.
continuous`) needs to know, *between* full CROC cycles, which brokers
are drifting towards overload and which have headroom to spare.  The
simulation already produces the raw signal deterministically: the
metrics collector counts per-broker messages and output bytes, and the
observability layer's timeline sampler snapshots the same counters at
virtual-time boundaries.  This module turns those streams into small
fitted models:

* a :class:`LoadSample` is one (virtual time, broker, load) observation
  — load is whatever unit the caller samples (the scheduler feeds
  output kB/s, the unit the capacity model bounds);
* a :class:`BrokerLoadEstimator` keeps a sliding window of samples per
  broker and fits an ordinary least-squares line through them, so
  :meth:`~BrokerLoadEstimator.predict` extrapolates a short horizon
  ahead instead of reacting to the last sample alone.

Every input is derived from the virtual clock and integer counters, and
the fit is pure float arithmetic over an ordered window — so the same
counter stream always produces the same predictions, bit for bit
(pinned by ``tests/test_estimator.py``).  No wall clock, no randomness.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Mapping, Optional, Tuple

from repro.core.floats import EPSILON, approx_zero

#: Default sliding-window length (samples per broker) for the fit.
DEFAULT_WINDOW = 8


@dataclass(frozen=True)
class LoadSample:
    """One deterministic load observation for one broker.

    ``load`` is the broker's observed output rate over the elapsed
    sampling interval (the scheduler samples kB/s, matching the
    capacity model's ``total_output_bandwidth`` unit);
    ``queue_depth`` / ``in_flight`` mirror the engine gauges the obs
    timeline records and ride along for diagnostics.
    """

    t: float
    broker_id: str
    load: float
    queue_depth: int = 0
    in_flight: int = 0


class BrokerLoadEstimator:
    """Per-broker least-squares load model over a sliding window.

    Parameters
    ----------
    window:
        Samples retained per broker.  Two are enough to fit a line;
        with fewer than two the estimator falls back to the last
        observed load (or 0.0 before any observation).
    horizon:
        Virtual seconds ahead of the latest sample that
        :meth:`predict` extrapolates by default.  ``0.0`` predicts the
        smoothed *current* load.
    """

    def __init__(self, window: int = DEFAULT_WINDOW, horizon: float = 0.0):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if horizon < 0:
            raise ValueError(f"horizon must be >= 0, got {horizon}")
        self.window = window
        self.horizon = horizon
        self._samples: Dict[str, Deque[LoadSample]] = {}
        self.samples_seen = 0

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def observe(self, sample: LoadSample) -> None:
        """Append one sample to its broker's window."""
        window = self._samples.get(sample.broker_id)
        if window is None:
            window = self._samples[sample.broker_id] = deque(maxlen=self.window)
        window.append(sample)
        self.samples_seen += 1

    def observe_loads(self, t: float, loads: Mapping[str, float]) -> None:
        """Record one sample per broker, in sorted broker order."""
        for broker_id in sorted(loads):
            self.observe(LoadSample(t=t, broker_id=broker_id,
                                    load=loads[broker_id]))

    def consume(self, record: Mapping[str, object]) -> None:
        """Ingest one obs timeline sample record.

        Accepts the dict shape the observability layer's
        :class:`~repro.obs.timeline.TimelineSampler` emits
        (``{"t": ..., "broker_rates": {...}, "queue_depth": ...,
        "in_flight": ...}``), so an estimator can be fitted offline
        from an ``--obs`` export as well as live from the scheduler.
        """
        t = float(record["t"])  # type: ignore[arg-type]
        rates = record.get("broker_rates")
        if not isinstance(rates, Mapping):
            return
        depth = int(record.get("queue_depth", 0))  # type: ignore[arg-type]
        flight = int(record.get("in_flight", 0))  # type: ignore[arg-type]
        for broker_id in sorted(rates):
            self.observe(LoadSample(
                t=t, broker_id=broker_id, load=float(rates[broker_id]),
                queue_depth=depth, in_flight=flight,
            ))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def broker_ids(self) -> List[str]:
        """Brokers with at least one sample, sorted."""
        return sorted(self._samples)

    def fitted(self, broker_id: str) -> bool:
        """Whether the broker has enough samples for a line fit."""
        window = self._samples.get(broker_id)
        return window is not None and len(window) >= 2

    def fit(self, broker_id: str) -> Tuple[float, float]:
        """Least-squares ``(intercept, slope)`` for one broker's window.

        With fewer than two samples — or a degenerate window where all
        timestamps coincide — the fit degrades to a constant: the mean
        load with zero slope.
        """
        window = self._samples.get(broker_id)
        if not window:
            return 0.0, 0.0
        count = len(window)
        mean_t = sum(sample.t for sample in window) / count
        mean_load = sum(sample.load for sample in window) / count
        if count < 2:
            return mean_load, 0.0
        var_t = sum((sample.t - mean_t) ** 2 for sample in window)
        if approx_zero(var_t):
            return mean_load, 0.0
        cov = sum(
            (sample.t - mean_t) * (sample.load - mean_load)
            for sample in window
        )
        slope = cov / var_t
        intercept = mean_load - slope * mean_t
        return intercept, slope

    def predict(self, broker_id: str, at: Optional[float] = None) -> float:
        """Predicted load for ``broker_id`` at virtual time ``at``.

        ``at=None`` evaluates the fit at the broker's latest sample
        time plus the configured ``horizon``.  Predictions are clamped
        at zero — a fitted downward trend never promises negative load.
        """
        window = self._samples.get(broker_id)
        if not window:
            return 0.0
        if at is None:
            at = window[-1].t + self.horizon
        intercept, slope = self.fit(broker_id)
        predicted = intercept + slope * at
        return predicted if predicted > 0.0 else 0.0

    def predicted_loads(self, at: Optional[float] = None) -> Dict[str, float]:
        """``{broker_id: predicted load}`` over all observed brokers.

        Keys are inserted in sorted order so iteration over the result
        is deterministic.
        """
        return {
            broker_id: self.predict(broker_id, at=at)
            for broker_id in self.broker_ids
        }

    def drift(self, baseline: Mapping[str, float]) -> float:
        """Largest relative deviation of predicted load from a baseline.

        ``baseline`` maps broker ids to the loads captured at the last
        full reconfiguration.  The result is
        ``max_b |predicted_b - baseline_b| / max(baseline_b, scale)``
        where ``scale`` is the mean baseline load — so brokers that
        were idle at the baseline cannot blow the ratio up through a
        near-zero denominator.  Brokers present on only one side count
        with the missing side at 0.0.  Returns 0.0 for an empty union.
        """
        ids = sorted(set(baseline) | set(self._samples))
        if not ids:
            return 0.0
        positives = [value for value in baseline.values() if value > EPSILON]
        scale = sum(positives) / len(positives) if positives else 1.0
        worst = 0.0
        for broker_id in ids:
            expected = baseline.get(broker_id, 0.0)
            predicted = self.predict(broker_id)
            denominator = expected if expected > scale else scale
            deviation = abs(predicted - expected) / denominator
            if deviation > worst:
                worst = deviation
        return worst
