"""Experiment scenarios mirroring the paper's testbeds (paper §VI-A).

Three scenario families:

* ``cluster_homogeneous`` — the 21-node-cluster homogeneous setup:
  80 brokers with equal capacities, 40 publishers at 70 msg/min, and an
  equal number of subscriptions per publisher (50–200, i.e. 2,000–8,000
  total).
* ``cluster_heterogeneous`` — same cluster with throttled bandwidth:
  15 brokers at 100% network capacity, 25 at 50%, 40 at 25%, and a
  decreasing number of subscriptions per publisher (``Ns`` down to
  ``Ns/40``).
* ``scinet`` — the large-scale HPC runs: 400 brokers / 72 publishers
  and 1,000 brokers / 100 publishers at 225 subscriptions per
  publisher.

Every factory takes a ``scale`` parameter (default 1.0) that shrinks
broker/publisher/subscription counts proportionally, because the full
paper-size scenarios are minutes-long pure-Python simulations; the
benchmark harness runs reduced sizes by default and the full sizes
behind an environment flag (see benchmarks/README inside each module).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.capacity import BrokerSpec, MatchingDelayFunction
from repro.workloads.stocks import STOCK_SYMBOLS
from repro.workloads.subscriptions import heterogeneous_counts

#: Paper publication rate: 70 messages per minute.
PAPER_PUBLICATION_RATE = 70.0 / 60.0

#: Publication payload size (kB); stock quotes are small messages.
DEFAULT_MESSAGE_KB = 0.5

#: Matching-delay model shared by all scenarios: 0.1 ms base plus
#: 1 µs per routing-table subscription.
DEFAULT_DELAY_FUNCTION = MatchingDelayFunction(base=1e-4, per_subscription=1e-6)


@dataclass(frozen=True)
class BrokerTier:
    """A group of identically-provisioned brokers."""

    count: int
    bandwidth_kbps: float


@dataclass
class Scenario:
    """A fully specified experiment configuration."""

    name: str
    tiers: Tuple[BrokerTier, ...]
    publishers: int
    subscription_counts: Tuple[int, ...]
    publication_rate: float = PAPER_PUBLICATION_RATE
    message_kb: float = DEFAULT_MESSAGE_KB
    profile_capacity: int = 192
    profiling_time: float = 0.0  # 0 → derived from profile_capacity
    measurement_time: float = 60.0
    heterogeneous: bool = False
    threshold_buckets: int = 4
    #: Enable SIENA/PADRES-style subscription covering in the brokers
    #: (off by default; the paper's PADRES deployment does not rely on
    #: it and the allocation framework is agnostic to it).
    enable_covering: bool = False
    delay_function: MatchingDelayFunction = field(
        default_factory=lambda: DEFAULT_DELAY_FUNCTION
    )

    def __post_init__(self) -> None:
        if self.publishers > len(STOCK_SYMBOLS):
            raise ValueError(
                f"at most {len(STOCK_SYMBOLS)} publishers supported, "
                f"got {self.publishers}"
            )
        if len(self.subscription_counts) != self.publishers:
            raise ValueError("one subscription count per publisher required")

    @property
    def broker_count(self) -> int:
        return sum(tier.count for tier in self.tiers)

    @property
    def total_subscriptions(self) -> int:
        return sum(self.subscription_counts)

    @property
    def symbols(self) -> Tuple[str, ...]:
        return STOCK_SYMBOLS[: self.publishers]

    def broker_specs(self) -> List[BrokerSpec]:
        """The broker pool, most resourceful tiers first."""
        specs: List[BrokerSpec] = []
        index = 0
        for tier in self.tiers:
            for _ in range(tier.count):
                specs.append(
                    BrokerSpec(
                        broker_id=f"B{index:04d}",
                        total_output_bandwidth=tier.bandwidth_kbps,
                        delay_function=self.delay_function,
                        url=f"padres://node{index}",
                    )
                )
                index += 1
        return specs

    def derived_profiling_time(self) -> float:
        """Virtual seconds needed to fill the profile bit vectors.

        A bit vector can record one bit per publication, so filling a
        ``profile_capacity``-bit window takes ``capacity / rate``
        seconds (plus slack for propagation).
        """
        if self.profiling_time > 0:
            return self.profiling_time
        return self.profile_capacity / self.publication_rate + 5.0


def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, round(value * scale))


def cluster_homogeneous(
    subscriptions_per_publisher: int = 50,
    scale: float = 1.0,
    broker_bandwidth_kbps: float = 60.0,
    **overrides,
) -> Scenario:
    """The homogeneous cluster scenario (80 brokers, 40 publishers).

    ``subscriptions_per_publisher`` ∈ {50, 100, 150, 200} reproduces
    the paper's 2,000–8,000 subscription sweep at ``scale=1.0``.
    """
    brokers = _scaled(80, scale, minimum=4)
    publishers = _scaled(40, scale, minimum=2)
    counts = tuple([subscriptions_per_publisher] * publishers)
    return Scenario(
        name=f"cluster-homo-{subscriptions_per_publisher}x{publishers}",
        tiers=(BrokerTier(count=brokers, bandwidth_kbps=broker_bandwidth_kbps),),
        publishers=publishers,
        subscription_counts=counts,
        heterogeneous=False,
        **overrides,
    )


def cluster_heterogeneous(
    ns: int = 50,
    scale: float = 1.0,
    full_bandwidth_kbps: float = 60.0,
    **overrides,
) -> Scenario:
    """The heterogeneous cluster scenario (paper §VI-A).

    15 brokers at 100% capacity, 25 at 50%, 40 at 25%; publisher ``i``
    gets a decreasing share of the ``Ns``-subscription budget (see
    :func:`repro.workloads.subscriptions.heterogeneous_counts`).
    """
    tier_counts = (
        _scaled(15, scale, minimum=1),
        _scaled(25, scale, minimum=1),
        _scaled(40, scale, minimum=2),
    )
    publishers = _scaled(40, scale, minimum=2)
    counts = tuple(heterogeneous_counts(publishers, ns))
    return Scenario(
        name=f"cluster-het-ns{ns}x{publishers}",
        tiers=(
            BrokerTier(count=tier_counts[0], bandwidth_kbps=full_bandwidth_kbps),
            BrokerTier(count=tier_counts[1], bandwidth_kbps=full_bandwidth_kbps * 0.5),
            BrokerTier(count=tier_counts[2], bandwidth_kbps=full_bandwidth_kbps * 0.25),
        ),
        publishers=publishers,
        subscription_counts=counts,
        heterogeneous=True,
        **overrides,
    )


def scinet(
    brokers: int = 400,
    scale: float = 1.0,
    broker_bandwidth_kbps: float = 60.0,
    **overrides,
) -> Scenario:
    """The SciNet large-scale scenario: 400/72 or 1,000/100.

    Publisher counts follow the paper ("set ... to initially saturate
    the system"): 72 publishers for 400 brokers, 100 for 1,000 brokers,
    interpolated otherwise; 225 subscriptions per publisher.
    """
    if brokers >= 1000:
        publishers = 100
    elif brokers >= 400:
        publishers = 72
    else:
        publishers = max(2, round(brokers * 0.18))
    brokers = _scaled(brokers, scale, minimum=4)
    publishers = _scaled(publishers, scale, minimum=2)
    counts = tuple([_scaled(225, scale, minimum=5)] * publishers)
    return Scenario(
        name=f"scinet-{brokers}",
        tiers=(BrokerTier(count=brokers, bandwidth_kbps=broker_bandwidth_kbps),),
        publishers=publishers,
        subscription_counts=counts,
        heterogeneous=False,
        **overrides,
    )
