"""Offline profile generation: Phase-1 output without running the DES.

The allocation algorithms only consume bit-vector profiles, broker
specs, and publisher profiles — everything CROC's Phase 1 gathers.
For algorithm-only studies (computation-time benchmarks, GIF/poset
statistics, CRAM ablations) simulating the whole overlay is wasted
work: this module replays each symbol's quote feed through the
subscription matcher directly and synthesizes the exact profiles the
CBCs would have produced.

The result is byte-for-byte the same *kind* of input CROC sees —
:class:`~repro.core.croc.GatherResult` — so anything accepting gathered
state runs unchanged on it.

Record production is streaming: :func:`iter_offline_records` yields one
:class:`~repro.core.units.SubscriptionRecord` at a time, holding only
one symbol's publication window in memory, so arbitrarily large
workloads can feed the columnar packer in chunks without ever
materializing every profile object.  :func:`offline_gather` is the
eager wrapper.  Laziness cannot perturb the RNG: every stream is a
*keyed* child (``rng.child("stock", symbol)`` inside the quote feed,
``rng.child("subs", symbol)`` inside the subscription generator), so
draw order across symbols is immaterial.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.core.croc import GatherResult
from repro.core.profiles import PublisherProfile, SubscriptionProfile
from repro.core.units import SubscriptionRecord
from repro.pubsub.matching import matches
from repro.pubsub.message import Publication
from repro.sim.rng import SeededRng
from repro.workloads.scenarios import Scenario
from repro.workloads.stocks import StockQuoteFeed
from repro.workloads.subscriptions import iter_subscriptions_for_symbol


def offline_directory(
    scenario: Scenario,
    window: Optional[int] = None,
) -> Dict[str, PublisherProfile]:
    """The publisher directory an offline gather of ``scenario`` sees."""
    window = window if window is not None else scenario.profile_capacity
    return {
        f"adv-{symbol}": PublisherProfile(
            adv_id=f"adv-{symbol}",
            publication_rate=scenario.publication_rate,
            bandwidth=scenario.publication_rate * scenario.message_kb,
            last_message_id=window,
        )
        for symbol in scenario.symbols
    }


def iter_offline_records(
    scenario: Scenario,
    seed: int = 0,
    window: Optional[int] = None,
    directory: Optional[Dict[str, PublisherProfile]] = None,
) -> Iterator[SubscriptionRecord]:
    """Lazily yield the subscription records an offline gather produces.

    Records arrive in the same order :func:`offline_gather` returns
    them (symbols in scenario order, subscriptions in generation
    order), one at a time; only the current symbol's publication
    window is resident.
    """
    window = window if window is not None else scenario.profile_capacity
    if directory is None:
        directory = offline_directory(scenario, window)
    if len(scenario.symbols) != len(scenario.subscription_counts):
        raise ValueError("symbols and subscription counts must align")
    rng = SeededRng(seed, "offline", scenario.name)
    for symbol, count in zip(scenario.symbols, scenario.subscription_counts):
        adv_id = f"adv-{symbol}"
        feed = StockQuoteFeed(symbol, rng)
        price_hint = feed.price  # before the window advances the feed
        publications = [
            Publication(
                adv_id=adv_id,
                message_id=message_id,
                attributes=next(feed),
                publish_time=0.0,
                size_kb=scenario.message_kb,
            )
            for message_id in range(1, window + 1)
        ]
        subscriptions = iter_subscriptions_for_symbol(
            symbol,
            count,
            rng,
            price_hint=price_hint,
            threshold_buckets=scenario.threshold_buckets,
        )
        for subscription in subscriptions:
            profile = SubscriptionProfile(capacity=scenario.profile_capacity)
            for publication in publications:
                if matches(subscription, publication):
                    profile.record(adv_id, publication.message_id)
            profile.synchronize(directory)
            yield SubscriptionRecord(
                sub_id=subscription.sub_id,
                subscriber_id=subscription.subscriber_id,
                profile=profile,
            )


def offline_gather(
    scenario: Scenario,
    seed: int = 0,
    window: Optional[int] = None,
) -> GatherResult:
    """Synthesize the GatherResult a profiling run would produce.

    Parameters
    ----------
    scenario:
        Any scenario; its broker pool, symbols, subscription counts,
        and rates are used.
    window:
        How many publications per publisher to replay (defaults to the
        scenario's profile capacity — a full bit vector).
    """
    window = window if window is not None else scenario.profile_capacity
    directory = offline_directory(scenario, window)
    records = list(
        iter_offline_records(scenario, seed=seed, window=window,
                             directory=directory)
    )
    return GatherResult(
        broker_pool=scenario.broker_specs(),
        records=records,
        directory=directory,
    )
