"""Offline profile generation: Phase-1 output without running the DES.

The allocation algorithms only consume bit-vector profiles, broker
specs, and publisher profiles — everything CROC's Phase 1 gathers.
For algorithm-only studies (computation-time benchmarks, GIF/poset
statistics, CRAM ablations) simulating the whole overlay is wasted
work: this module replays each symbol's quote feed through the
subscription matcher directly and synthesizes the exact profiles the
CBCs would have produced.

The result is byte-for-byte the same *kind* of input CROC sees —
:class:`~repro.core.croc.GatherResult` — so anything accepting gathered
state runs unchanged on it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.croc import GatherResult
from repro.core.profiles import PublisherProfile, SubscriptionProfile
from repro.core.units import SubscriptionRecord
from repro.pubsub.matching import matches
from repro.pubsub.message import Publication
from repro.sim.rng import SeededRng
from repro.workloads.scenarios import Scenario
from repro.workloads.stocks import StockQuoteFeed
from repro.workloads.subscriptions import subscription_workload


def offline_gather(
    scenario: Scenario,
    seed: int = 0,
    window: Optional[int] = None,
) -> GatherResult:
    """Synthesize the GatherResult a profiling run would produce.

    Parameters
    ----------
    scenario:
        Any scenario; its broker pool, symbols, subscription counts,
        and rates are used.
    window:
        How many publications per publisher to replay (defaults to the
        scenario's profile capacity — a full bit vector).
    """
    window = window if window is not None else scenario.profile_capacity
    rng = SeededRng(seed, "offline", scenario.name)
    feeds = {symbol: StockQuoteFeed(symbol, rng) for symbol in scenario.symbols}
    price_hints = {symbol: feed.price for symbol, feed in feeds.items()}
    workload = subscription_workload(
        scenario.symbols,
        scenario.subscription_counts,
        rng,
        price_hints=price_hints,
        threshold_buckets=scenario.threshold_buckets,
    )
    directory: Dict[str, PublisherProfile] = {}
    records: List[SubscriptionRecord] = []
    for symbol in scenario.symbols:
        adv_id = f"adv-{symbol}"
        directory[adv_id] = PublisherProfile(
            adv_id=adv_id,
            publication_rate=scenario.publication_rate,
            bandwidth=scenario.publication_rate * scenario.message_kb,
            last_message_id=window,
        )
        publications = [
            Publication(
                adv_id=adv_id,
                message_id=message_id,
                attributes=next(feeds[symbol]),
                publish_time=0.0,
                size_kb=scenario.message_kb,
            )
            for message_id in range(1, window + 1)
        ]
        for subscription in workload[symbol]:
            profile = SubscriptionProfile(capacity=scenario.profile_capacity)
            for publication in publications:
                if matches(subscription, publication):
                    profile.record(adv_id, publication.message_id)
            profile.synchronize(directory)
            records.append(
                SubscriptionRecord(
                    sub_id=subscription.sub_id,
                    subscriber_id=subscription.subscriber_id,
                    profile=profile,
                )
            )
    return GatherResult(
        broker_pool=scenario.broker_specs(),
        records=records,
        directory=directory,
    )
