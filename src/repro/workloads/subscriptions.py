"""Subscription workload generation (paper §VI-A).

For each stock, 40% of its subscriptions use the bare template
``[class,=,'STOCK'],[symbol,=,'SYM']`` (these all sink identical
traffic and collapse into one GIF), while the other 60% add one
inequality predicate over a numeric quote attribute, e.g.
``[low,<,25.4]`` — each inequality sinks a different *subset* of the
symbol's publications, producing the covering chains and intersections
the CRAM poset exploits.

Thresholds are drawn from a small number of per-attribute buckets
(``threshold_buckets``): distinct buckets give distinct bit vectors
(more GIFs), repeated buckets give identical ones (bigger GIFs) —
matching the paper's observed ~61% GIF reduction at 8,000
subscriptions.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.pubsub.message import Subscription
from repro.pubsub.predicate import Operator, Predicate
from repro.sim.rng import SeededRng

#: Numeric attributes an inequality predicate may constrain, with the
#: quantile span thresholds are drawn from (relative to the symbol's
#: price or volume scale).
_INEQUALITY_ATTRIBUTES: Tuple[str, ...] = ("open", "high", "low", "close", "volume")
_TEMPLATE_FRACTION = 0.4


def _threshold_pool(
    attribute: str,
    price_hint: float,
    volume_hint: float,
    buckets: int,
    rng: SeededRng,
) -> List[float]:
    """A small pool of plausible thresholds for one attribute."""
    if attribute == "volume":
        low, high = volume_hint * 0.4, volume_hint * 2.5
    else:
        low, high = price_hint * 0.85, price_hint * 1.15
    if buckets <= 1:
        return [round((low + high) / 2.0, 2)]
    step = (high - low) / (buckets - 1)
    return [round(low + i * step, 2) for i in range(buckets)]


def iter_subscriptions_for_symbol(
    symbol: str,
    count: int,
    rng: SeededRng,
    price_hint: float = 50.0,
    volume_hint: float = 8000.0,
    threshold_buckets: int = 4,
    subscriber_prefix: Optional[str] = None,
) -> Iterator[Subscription]:
    """Lazily generate ``count`` subscriptions for one stock.

    Each subscription gets its own single-subscription subscriber
    (paper terminology uses subscriber and subscription
    interchangeably; CROC migrates them individually).

    The RNG stream is keyed (``rng.child("subs", symbol)``), so lazy
    consumption — in any interleaving with other symbols' generators —
    draws exactly the values the eager list version draws.
    """
    rng = rng.child("subs", symbol)
    prefix = subscriber_prefix or f"sub-{symbol}"
    template_count = round(count * _TEMPLATE_FRACTION)
    pools = {
        attribute: _threshold_pool(attribute, price_hint, volume_hint,
                                   threshold_buckets, rng)
        for attribute in _INEQUALITY_ATTRIBUTES
    }
    for index in range(count):
        sub_id = f"{prefix}-{index}"
        predicates = [
            Predicate("class", Operator.EQ, "STOCK"),
            Predicate("symbol", Operator.EQ, symbol),
        ]
        if index >= template_count:
            attribute = rng.choice(_INEQUALITY_ATTRIBUTES)
            operator = rng.choice((Operator.LT, Operator.LE, Operator.GT, Operator.GE))
            threshold = rng.choice(pools[attribute])
            predicates.append(Predicate(attribute, operator, threshold))
        yield Subscription(
            sub_id=sub_id,
            subscriber_id=sub_id,
            predicates=tuple(predicates),
        )


def subscriptions_for_symbol(
    symbol: str,
    count: int,
    rng: SeededRng,
    price_hint: float = 50.0,
    volume_hint: float = 8000.0,
    threshold_buckets: int = 4,
    subscriber_prefix: Optional[str] = None,
) -> List[Subscription]:
    """Eager wrapper of :func:`iter_subscriptions_for_symbol`."""
    return list(
        iter_subscriptions_for_symbol(
            symbol,
            count,
            rng,
            price_hint=price_hint,
            volume_hint=volume_hint,
            threshold_buckets=threshold_buckets,
            subscriber_prefix=subscriber_prefix,
        )
    )


def heterogeneous_counts(publishers: int, ns: int) -> List[int]:
    """Per-publisher subscription counts for the heterogeneous scenario.

    The paper's text gives the formula "Ns ÷ i" but also states that
    Ns = 200 over 40 publishers totals 4,100 subscriptions with a
    minimum of 5 — figures that match a *linear* descent from Ns to
    Ns/40 exactly (the harmonic formula would total ~856).  We follow
    the stated totals: count(i) decreases linearly from Ns to
    Ns/publishers.  See DESIGN.md §5.
    """
    if publishers <= 0:
        return []
    floor = max(1, round(ns / publishers))
    if publishers == 1:
        return [ns]
    step = (ns - floor) / (publishers - 1)
    return [max(1, round(ns - i * step)) for i in range(publishers)]


def subscription_workload(
    symbols: Sequence[str],
    counts: Sequence[int],
    rng: SeededRng,
    price_hints: Optional[Dict[str, float]] = None,
    volume_hint: float = 8000.0,
    threshold_buckets: int = 4,
) -> Dict[str, List[Subscription]]:
    """symbol → subscriptions, one entry per publisher."""
    if len(symbols) != len(counts):
        raise ValueError("symbols and counts must align")
    price_hints = price_hints or {}
    workload: Dict[str, List[Subscription]] = {}
    for symbol, count in zip(symbols, counts):
        workload[symbol] = subscriptions_for_symbol(
            symbol,
            count,
            rng,
            price_hint=price_hints.get(symbol, 50.0),
            volume_hint=volume_hint,
            threshold_buckets=threshold_buckets,
        )
    return workload
