"""Synthetic stock-quote publications.

The paper's publishers replay Yahoo! Finance daily closing quotes; each
publisher publishes one unique stock.  Without access to the original
traces we synthesize per-symbol OHLCV daily bars with a seeded
geometric random walk — same attribute schema, same "no well-defined
distribution" property the paper leans on, fully reproducible.

A generated publication carries exactly the paper's attributes::

    [class,'STOCK'],[symbol,'YHOO'],[open,18.37],[high,18.6],
    [low,18.37],[close,18.37],[volume,6200],[date,'5-Sep-96'],
    [openClose%Diff,0.0],[highLow%Diff,0.014],
    [closeEqualsLow,'true'],[closeEqualsHigh,'false']
"""

from __future__ import annotations

import datetime
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.pubsub.message import Advertisement
from repro.pubsub.predicate import Operator, Predicate
from repro.sim.rng import SeededRng

#: Ticker universe; experiments take the first N as their publishers.
STOCK_SYMBOLS: Tuple[str, ...] = (
    "YHOO", "MSFT", "IBM", "ORCL", "INTC", "CSCO", "AAPL", "DELL",
    "HPQ", "SUNW", "AMZN", "EBAY", "GOOG", "RHAT", "ADBE", "NVDA",
    "AMD", "TXN", "MOT", "NOK", "QCOM", "JNPR", "LU", "GE",
    "T", "VZ", "SBC", "F", "GM", "XOM", "CVX", "BP",
    "WMT", "TGT", "KO", "PEP", "MCD", "DIS", "AIG", "C",
    "JPM", "BAC", "WFC", "GS", "MS", "AXP", "MMM", "BA",
    "CAT", "DD", "EK", "GT", "HD", "HON", "IP", "JNJ",
    "MRK", "PFE", "PG", "UTX", "ALCOA", "S", "K", "CL",
    "CPQ", "GTW", "PALM", "RIMM", "SGI", "NOVL", "BORL", "SYBS",
    "INFA", "TIBX", "BEAS", "VRSN", "AKAM", "EXDS", "INKT", "LNUX",
    "CMGI", "ICGE", "ETYS", "PETS", "WBVN", "KOOP", "FLWS", "PCLN",
    "DRIV", "EGRP", "AMTD", "SCH", "NITE", "MWD", "LEH", "BSC",
    "MER", "PRU", "MET", "ALL",
)

_BASE_DATE = datetime.date(1996, 1, 2)


def _format_date(day_offset: int) -> str:
    """Dates in Yahoo!'s '5-Sep-96' style."""
    day = _BASE_DATE + datetime.timedelta(days=day_offset)
    return f"{day.day}-{day.strftime('%b')}-{day.strftime('%y')}"


class StockQuoteFeed:
    """An endless iterator of daily OHLCV bars for one symbol.

    Parameters
    ----------
    symbol:
        Ticker name; also seeds the per-symbol random stream.
    rng:
        Parent random stream (a per-symbol child is derived from it).
    initial_price / daily_volatility / base_volume:
        Random-walk parameters; defaults give mid-1990s-looking quotes.
    """

    def __init__(
        self,
        symbol: str,
        rng: SeededRng,
        initial_price: Optional[float] = None,
        daily_volatility: float = 0.02,
        base_volume: float = 8000.0,
    ):
        self.symbol = symbol
        self._rng = rng.child("stock", symbol)
        self._price = (
            initial_price
            if initial_price is not None
            else self._rng.uniform(5.0, 120.0)
        )
        self._volatility = daily_volatility
        self._base_volume = base_volume
        self._day = 0

    @property
    def price(self) -> float:
        """Current (last generated) closing price."""
        return self._price

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return self

    def __next__(self) -> Dict[str, Any]:
        open_price = self._price
        drift = self._rng.gauss(0.0, self._volatility)
        close = max(0.25, round(open_price * (1.0 + drift), 2))
        wiggle_high = abs(self._rng.gauss(0.0, self._volatility / 2.0))
        wiggle_low = abs(self._rng.gauss(0.0, self._volatility / 2.0))
        high = round(max(open_price, close) * (1.0 + wiggle_high), 2)
        low = round(min(open_price, close) * (1.0 - wiggle_low), 2)
        volume = int(self._rng.lognormal(0.0, 0.6) * self._base_volume)
        self._price = close
        date = _format_date(self._day)
        self._day += 1
        open_close_diff = round(abs(close - open_price) / open_price, 4)
        high_low_diff = round((high - low) / high, 4) if high > 0 else 0.0
        return {
            "class": "STOCK",
            "symbol": self.symbol,
            "open": open_price,
            "high": high,
            "low": low,
            "close": close,
            "volume": volume,
            "date": date,
            "openClose%Diff": open_close_diff,
            "highLow%Diff": high_low_diff,
            "closeEqualsLow": "true" if close == low else "false",
            "closeEqualsHigh": "true" if close == high else "false",
        }


def stock_advertisement(symbol: str, adv_id: Optional[str] = None,
                        publisher_id: Optional[str] = None) -> Advertisement:
    """The advertisement a stock publisher floods before publishing.

    Advertises the full value space of the quote schema, pinned to the
    publisher's symbol — publications satisfy it by construction.
    """
    predicates = (
        Predicate("class", Operator.EQ, "STOCK"),
        Predicate("symbol", Operator.EQ, symbol),
        Predicate("open", Operator.GE, 0.0),
        Predicate("high", Operator.GE, 0.0),
        Predicate("low", Operator.GE, 0.0),
        Predicate("close", Operator.GE, 0.0),
        Predicate("volume", Operator.GE, 0.0),
        Predicate("date", Operator.PRESENT),
        Predicate("openClose%Diff", Operator.GE, 0.0),
        Predicate("highLow%Diff", Operator.GE, 0.0),
        Predicate("closeEqualsLow", Operator.PRESENT),
        Predicate("closeEqualsHigh", Operator.PRESENT),
    )
    return Advertisement(
        adv_id=adv_id or f"adv-{symbol}",
        publisher_id=publisher_id or f"pub-{symbol}",
        predicates=predicates,
    )
