"""A systems-monitoring workload — a second domain for the framework.

The paper motivates its approach with enterprise systems *beyond*
stock quotes: network/systems monitoring, business activity
monitoring, RSS dissemination.  Its central design point is that the
allocation framework never inspects the subscription language — only
bit vectors — so it must work unchanged on any workload.  This module
provides that second domain: hosts in a data center publish metric
samples, and operations teams subscribe to dashboards and alerts.

Publication schema::

    [class,'METRIC'],[host,'web-007'],[role,'web'],[metric,'cpu'],
    [value,73.2],[severity,2],[seq,118]

Subscription population (per host-role, mirroring real monitoring
stacks):

* *dashboards* — everything from one host (``host = X``);
* *rollups* — one metric across a role (``role = R, metric = M``);
* *alerts* — threshold triggers (``role = R, metric = M, value > T``)
  and severity filters (``severity >= S``), which match rare events
  and produce the sparse bit vectors that stress CRAM's closeness
  metrics from a completely different distribution than stock quotes.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.pubsub.message import Advertisement, Subscription
from repro.pubsub.predicate import Operator, Predicate
from repro.sim.rng import SeededRng

#: Host roles with (metric mix, baseline value ranges).
ROLES: Tuple[str, ...] = ("web", "db", "cache", "queue")

METRICS: Dict[str, Tuple[float, float]] = {
    "cpu": (5.0, 95.0),       # percent
    "memory": (10.0, 90.0),   # percent
    "disk_io": (0.0, 400.0),  # MB/s
    "latency": (0.2, 250.0),  # ms
}

#: Severity levels: 0 = info ... 3 = critical (rarer as level rises).
SEVERITY_WEIGHTS = (0.70, 0.20, 0.08, 0.02)


def host_name(role: str, index: int) -> str:
    return f"{role}-{index:03d}"


class MetricFeed:
    """Endless metric samples for one host.

    Values follow a mean-reverting walk per metric; severity spikes are
    sampled independently so alert subscriptions see rare, bursty
    matches — a deliberately different distribution from OHLCV bars.
    """

    def __init__(self, host: str, role: str, rng: SeededRng):
        self.host = host
        self.role = role
        self._rng = rng.child("metrics", host)
        self._levels = {
            metric: self._rng.uniform(low, high)
            for metric, (low, high) in METRICS.items()
        }
        self._metrics = tuple(METRICS)
        self._seq = 0

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return self

    def __next__(self) -> Dict[str, Any]:
        metric = self._metrics[self._seq % len(self._metrics)]
        low, high = METRICS[metric]
        level = self._levels[metric]
        # Mean-revert toward the middle of the range with noise.
        middle = (low + high) / 2.0
        level += 0.2 * (middle - level) + self._rng.gauss(0.0, (high - low) * 0.08)
        level = min(high, max(low, level))
        self._levels[metric] = level
        point = self._rng.random()
        severity = 0
        cumulative = 0.0
        for index, weight in enumerate(SEVERITY_WEIGHTS):
            cumulative += weight
            if point <= cumulative:
                severity = index
                break
        self._seq += 1
        return {
            "class": "METRIC",
            "host": self.host,
            "role": self.role,
            "metric": metric,
            "value": round(level, 2),
            "severity": severity,
            "seq": self._seq,
        }


def metric_advertisement(host: str, role: str,
                         adv_id: Optional[str] = None) -> Advertisement:
    """The advertisement a host agent floods before publishing."""
    predicates = (
        Predicate("class", Operator.EQ, "METRIC"),
        Predicate("host", Operator.EQ, host),
        Predicate("role", Operator.EQ, role),
        Predicate("metric", Operator.PRESENT),
        Predicate("value", Operator.GE, 0.0),
        Predicate("severity", Operator.GE, 0.0),
        Predicate("seq", Operator.GE, 0.0),
    )
    return Advertisement(
        adv_id=adv_id or f"adv-{host}",
        publisher_id=f"agent-{host}",
        predicates=predicates,
    )


def monitoring_subscriptions(
    hosts: Sequence[Tuple[str, str]],
    count: int,
    rng: SeededRng,
) -> List[Subscription]:
    """Generate ``count`` operations-team subscriptions.

    Mix: 30% host dashboards, 30% role/metric rollups, 25% threshold
    alerts, 15% severity filters.
    """
    rng = rng.child("monitoring-subs")
    subscriptions: List[Subscription] = []
    roles = sorted({role for _host, role in hosts})
    for index in range(count):
        sub_id = f"ops-{index}"
        draw = rng.random()
        predicates: List[Predicate] = [Predicate("class", Operator.EQ, "METRIC")]
        if draw < 0.30:  # dashboard
            host, _role = rng.choice(hosts)
            predicates.append(Predicate("host", Operator.EQ, host))
        elif draw < 0.60:  # rollup
            role = rng.choice(roles)
            metric = rng.choice(tuple(METRICS))
            predicates.append(Predicate("role", Operator.EQ, role))
            predicates.append(Predicate("metric", Operator.EQ, metric))
        elif draw < 0.85:  # threshold alert
            role = rng.choice(roles)
            metric = rng.choice(tuple(METRICS))
            low, high = METRICS[metric]
            threshold = round(low + (high - low) * rng.uniform(0.6, 0.95), 2)
            predicates.append(Predicate("role", Operator.EQ, role))
            predicates.append(Predicate("metric", Operator.EQ, metric))
            predicates.append(Predicate("value", Operator.GT, threshold))
        else:  # severity filter
            predicates.append(
                Predicate("severity", Operator.GE, float(rng.randint(1, 3)))
            )
        subscriptions.append(
            Subscription(
                sub_id=sub_id,
                subscriber_id=sub_id,
                predicates=tuple(predicates),
            )
        )
    return subscriptions


def build_hosts(host_count: int, rng: SeededRng) -> List[Tuple[str, str]]:
    """(host, role) pairs, roles assigned round-robin with jitter."""
    hosts = []
    for index in range(host_count):
        role = ROLES[index % len(ROLES)]
        hosts.append((host_name(role, index), role))
    return rng.shuffled(hosts)
