"""Chunked streaming ingest: record generators → the columnar store.

The paper's motivating scale (millions of subscriptions) never fits as
a list of profile objects, but the columnar store only needs each
profile's packed plane bits — a single integer.  This module bridges
the two: it walks any :class:`~repro.core.units.SubscriptionRecord`
iterator chunk by chunk, packs each chunk with
:func:`repro.core.kernel.pack_profile_bits`, bulk-appends the packed
rows via :meth:`~repro.core.columnar.ColumnarStore.add_rows`, and
drops the chunk.  Peak object liveness is bounded by the chunk size,
not the workload size (pinned by
``tests/test_columnar_equivalence.py``).

For scale tests and benchmarks that should not pay RNG or matching
costs, :func:`iter_synthetic_records` produces deterministic
arithmetic bit patterns (a golden-ratio multiply, no random state),
already window-aligned to :func:`synthetic_directory`'s layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import Callable, Dict, Iterable, Iterator, List, Optional, TypeVar

from repro.core.bitvector import BitVector
from repro.core.columnar import ColumnarStore
from repro.core.kernel import BitPlaneLayout, pack_profile_bits
from repro.core.profiles import PublisherProfile, SubscriptionProfile
from repro.core.units import SubscriptionRecord

_T = TypeVar("_T")

#: Golden-ratio multiplier (2^64 / φ): consecutive indices map to
#: well-spread, deterministic bit patterns without any RNG.
_MIX = 0x9E3779B97F4A7C15

DEFAULT_CHUNK_SIZE = 4096


def chunked(iterable: Iterable[_T], size: int) -> Iterator[List[_T]]:
    """Yield successive lists of up to ``size`` items from ``iterable``."""
    if size <= 0:
        raise ValueError(f"chunk size must be positive, got {size}")
    iterator = iter(iterable)
    while True:
        chunk = list(islice(iterator, size))
        if not chunk:
            return
        yield chunk


def synthetic_directory(
    publishers: int, capacity: int
) -> Dict[str, PublisherProfile]:
    """A publisher directory whose windows match synthetic records."""
    return {
        f"pub-{index}": PublisherProfile(
            adv_id=f"pub-{index}",
            publication_rate=10.0,
            bandwidth=10.0,
            last_message_id=capacity,
        )
        for index in range(publishers)
    }


def iter_synthetic_records(
    count: int, publishers: int = 4, capacity: int = 64
) -> Iterator[SubscriptionRecord]:
    """Lazily yield ``count`` records with deterministic bit patterns.

    Record ``index`` subscribes to publisher ``index % publishers``
    with pattern ``((index + 1) * _MIX) | 1`` masked to the window —
    distinct, non-empty, and reproducible with no random state.  The
    vectors are aligned to :func:`synthetic_directory`'s planes, so
    every record packs onto ``BitPlaneLayout.from_directory``.
    """
    mask = (1 << capacity) - 1
    for index in range(count):
        adv_id = f"pub-{index % publishers}"
        vector = BitVector(capacity=capacity, first_id=1)
        vector.load_bits(((index + 1) * _MIX | 1) & mask)
        profile = SubscriptionProfile(capacity=capacity)
        profile.adopt_vectors({adv_id: vector})
        sub_id = f"syn-{index}"
        yield SubscriptionRecord(
            sub_id=sub_id, subscriber_id=sub_id, profile=profile
        )


@dataclass(frozen=True)
class StreamSummary:
    """What one streaming ingest did (counts only — no records kept)."""

    rows: int
    skipped: int
    chunks: int


def stream_into_store(
    records: Iterable[SubscriptionRecord],
    layout: BitPlaneLayout,
    store: ColumnarStore,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    on_chunk: Optional[Callable[[List[SubscriptionRecord]], None]] = None,
) -> StreamSummary:
    """Pack ``records`` into ``store`` one chunk at a time.

    Records whose vectors miss their plane windows cannot be packed
    losslessly; they are counted in ``skipped`` rather than stored
    (callers routing them to the naive per-pair path).  ``on_chunk``
    sees each chunk before it is dropped — tests use it to observe
    liveness; it must not retain the records.
    """
    rows = skipped = chunks = 0
    for chunk in chunked(records, chunk_size):
        chunks += 1
        packed: List[int] = []
        for record in chunk:
            bits = pack_profile_bits(record.profile, layout)
            if bits is None:
                skipped += 1
            else:
                packed.append(bits)
        if packed:
            store.add_rows(packed)
            rows += len(packed)
        if on_chunk is not None:
            on_chunk(chunk)
    return StreamSummary(rows=rows, skipped=skipped, chunks=chunks)
