"""Workload generation: stock-quote feeds, subscriptions, scenarios."""

from __future__ import annotations

from repro.workloads import monitoring, scenarios
from repro.workloads.offline import offline_gather
from repro.workloads.stocks import STOCK_SYMBOLS, StockQuoteFeed, stock_advertisement
from repro.workloads.subscriptions import (
    subscription_workload,
    subscriptions_for_symbol,
)

__all__ = [
    "monitoring",
    "scenarios",
    "offline_gather",
    "STOCK_SYMBOLS",
    "StockQuoteFeed",
    "stock_advertisement",
    "subscription_workload",
    "subscriptions_for_symbol",
]
