"""Figure/table sweeps as reusable functions.

Each function regenerates one of the paper's figures at a caller-chosen
scale and returns plain row dictionaries, so the same code backs the
benchmark harness, the command-line interface, and ad-hoc notebook use.

The multi-objective surface lives here too: :class:`ParetoFront` ranks
approaches by non-dominated {allocated_brokers, joules, mean_delay,
delivery_rate} vectors (the single-winner tables answer "who has the
fewest brokers?"; the front answers "who is not strictly beaten?").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, cast

from repro.core.config import RunConfig
from repro.core.floats import approx_eq, approx_le
from repro.experiments.parallel import CellSpec, execute_cells, run_spec
from repro.experiments.runner import ExperimentResult
from repro.sim.faults import FaultPlan
from repro.workloads.scenarios import (
    Scenario,
    cluster_heterogeneous,
    cluster_homogeneous,
    scinet,
)

MetricKey = str


def run_cell(
    scenario: Scenario,
    approach: str,
    seed: int = 2011,
    cram_failure_budget: Optional[int] = 150,
    fault_plan: Optional[FaultPlan] = None,
    config: Optional[RunConfig] = None,
) -> ExperimentResult:
    """One (scenario, approach) measurement."""
    return run_spec(CellSpec(
        scenario=scenario, approach=approach, seed=seed,
        cram_failure_budget=cram_failure_budget, fault_plan=fault_plan,
        config=config,
    ))


def sweep_specs(
    scenarios: Sequence[Scenario],
    approaches: Sequence[str],
    seed: int = 2011,
    fault_plan: Optional[FaultPlan] = None,
    observe: bool = False,
    config: Optional[RunConfig] = None,
) -> List[CellSpec]:
    """The matrix's cells, in the canonical scenario-major order."""
    return [
        CellSpec(scenario=scenario, approach=approach, seed=seed,
                 fault_plan=fault_plan, observe=observe, config=config)
        for scenario in scenarios
        for approach in approaches
    ]


def sweep(
    scenarios: Sequence[Scenario],
    approaches: Sequence[str],
    seed: int = 2011,
    progress: Optional[Callable[[str], None]] = None,
    fault_plan: Optional[FaultPlan] = None,
    jobs: int = 1,
    observe: bool = False,
    config: Optional[RunConfig] = None,
    profile_dir: Optional[str] = None,
) -> Dict[Tuple[str, str], ExperimentResult]:
    """Run the full (scenario × approach) matrix.

    ``jobs`` fans the independent cells out to a process pool
    (``0`` = one worker per usable CPU); results are merged in the
    serial order and are bit-identical to ``jobs=1`` — see
    :mod:`repro.experiments.parallel` for the determinism contract.
    ``observe`` attaches a per-cell recorder (``result.obs``);
    ``config`` threads one :class:`~repro.core.config.RunConfig` into
    every cell; ``profile_dir`` dumps a cProfile ``.pstats`` per cell
    (forces serial execution).
    """
    specs = sweep_specs(scenarios, approaches, seed=seed, fault_plan=fault_plan,
                        observe=observe, config=config)
    cells = execute_cells(specs, jobs=jobs, progress=progress,
                          profile_dir=profile_dir)
    return {
        (spec.scenario.name, spec.approach): cast(ExperimentResult, result)
        for spec, result in zip(specs, cells)
    }


def figure_rows(
    results: Dict[Tuple[str, str], ExperimentResult],
    scenarios: Sequence[Scenario],
    approaches: Sequence[str],
    metric: MetricKey,
    x_label: str = "total_subscriptions",
) -> List[dict]:
    """Pivot a sweep into one row per scenario, one column per approach."""
    rows = []
    for scenario in scenarios:
        row = {x_label: scenario.total_subscriptions}
        for approach in approaches:
            result = results[(scenario.name, approach)]
            row[approach] = result.as_row()[metric]
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# The paper's figures
# ----------------------------------------------------------------------

def homogeneous_scenarios(
    subs_sweep: Iterable[int] = (50, 100, 150, 200),
    scale: float = 1.0,
    measurement_time: float = 40.0,
) -> List[Scenario]:
    return [
        cluster_homogeneous(
            subscriptions_per_publisher=subs,
            scale=scale,
            measurement_time=measurement_time,
        )
        for subs in subs_sweep
    ]


def heterogeneous_scenarios(
    ns_sweep: Iterable[int] = (50, 100, 150, 200),
    scale: float = 1.0,
    measurement_time: float = 40.0,
) -> List[Scenario]:
    return [
        cluster_heterogeneous(ns=ns, scale=scale, measurement_time=measurement_time)
        for ns in ns_sweep
    ]


def scinet_scenarios(
    scale: float = 1.0, measurement_time: float = 30.0
) -> List[Scenario]:
    return [
        scinet(brokers=brokers, scale=scale, measurement_time=measurement_time)
        for brokers in (400, 1000)
    ]


FIGURES: Dict[str, MetricKey] = {
    "message-rate": "avg_broker_message_rate",
    "brokers": "allocated_brokers",
    "delay": "mean_delivery_delay_ms",
    "hops": "mean_hop_count",
    "msg-rate-reduction": "msg_rate_reduction_pct",
    "broker-reduction": "broker_reduction_pct",
    "computation": "computation_s",
}


# ----------------------------------------------------------------------
# Multi-objective Pareto front
# ----------------------------------------------------------------------

#: The green trade-off space: ``(metric key, maximize?)`` per
#: objective.  Brokers, joules, and delay are minimized; delivery rate
#: is maximized.
PARETO_OBJECTIVES: Tuple[Tuple[str, bool], ...] = (
    ("allocated_brokers", False),
    ("joules", False),
    ("mean_delay_ms", False),
    ("delivery_rate", True),
)


@dataclass(frozen=True)
class ParetoEntry:
    """One (scenario, approach) point in objective space.

    ``rank`` is its non-dominated-sorting depth within its scenario:
    1 = on the front, 2 = on the front once rank-1 points are removed,
    and so on.
    """

    cell: str
    scenario: str
    approach: str
    vector: Tuple[float, ...]
    rank: int


def dominates(
    first: Sequence[float],
    second: Sequence[float],
    objectives: Tuple[Tuple[str, bool], ...] = PARETO_OBJECTIVES,
) -> bool:
    """Pareto dominance with float slack.

    ``first`` dominates ``second`` when it is no worse on every
    objective (within :data:`~repro.core.floats.EPSILON`) and strictly
    better on at least one.  Approximately equal vectors never dominate
    each other, so ties share a rank instead of ordering arbitrarily.
    """
    strictly_better = False
    for index, (_key, maximize) in enumerate(objectives):
        a, b = first[index], second[index]
        no_worse = approx_le(b, a) if maximize else approx_le(a, b)
        if not no_worse:
            return False
        if not approx_eq(a, b):
            strictly_better = True
    return strictly_better


@dataclass(frozen=True)
class ParetoFront:
    """Non-dominated sorting of (scenario, approach) metric vectors.

    Dominance is only compared *within* a scenario (vectors from
    different workloads are not comparable); entries are ordered by
    (scenario, rank, approach), so the result is independent of input
    order (pinned by ``tests/test_energy_properties.py``).
    """

    objectives: Tuple[Tuple[str, bool], ...]
    entries: Tuple[ParetoEntry, ...]

    @classmethod
    def from_vectors(
        cls,
        items: Sequence[Tuple[str, str, str, Mapping[str, float]]],
        objectives: Tuple[Tuple[str, bool], ...] = PARETO_OBJECTIVES,
    ) -> "ParetoFront":
        """Build from ``(cell, scenario, approach, metrics)`` tuples."""
        points = sorted(
            (
                (
                    scenario,
                    approach,
                    cell,
                    tuple(float(metrics[key]) for key, _max in objectives),
                )
                for cell, scenario, approach, metrics in items
            ),
        )
        by_scenario: Dict[str, List[Tuple[str, str, Tuple[float, ...]]]] = {}
        for scenario, approach, cell, vector in points:
            by_scenario.setdefault(scenario, []).append(
                (approach, cell, vector)
            )
        entries: List[ParetoEntry] = []
        for scenario in sorted(by_scenario):
            remaining = list(by_scenario[scenario])
            rank = 0
            while remaining:
                rank += 1
                front = [
                    point
                    for point in remaining
                    if not any(
                        dominates(other[2], point[2], objectives)
                        for other in remaining
                        if other is not point
                    )
                ]
                if not front:  # pragma: no cover - dominance is a strict
                    break      # partial order, so a front always exists
                for approach, cell, vector in front:
                    entries.append(
                        ParetoEntry(
                            cell=cell,
                            scenario=scenario,
                            approach=approach,
                            vector=vector,
                            rank=rank,
                        )
                    )
                remaining = [p for p in remaining if p not in front]
        return cls(objectives=tuple(objectives), entries=tuple(entries))

    def front(self) -> Tuple[ParetoEntry, ...]:
        """The rank-1 (non-dominated) entries."""
        return tuple(entry for entry in self.entries if entry.rank == 1)

    def rank_of(self, scenario: str, approach: str) -> int:
        """The rank of one cell (raises for unknown cells)."""
        for entry in self.entries:
            if entry.scenario == scenario and entry.approach == approach:
                return entry.rank
        raise KeyError(f"no pareto entry for {scenario}/{approach}")

    def rows(self) -> List[dict]:
        """Flat rows for the report tables, one per entry."""
        rows = []
        for entry in self.entries:
            row: Dict[str, object] = {
                "scenario": entry.scenario,
                "approach": entry.approach,
            }
            for index, (key, _max) in enumerate(self.objectives):
                value = entry.vector[index]
                row[key] = (
                    int(value) if key == "allocated_brokers"
                    else round(value, 4)
                )
            row["rank"] = entry.rank
            row["front"] = "*" if entry.rank == 1 else ""
            rows.append(row)
        return rows


def pareto_front(
    results: Mapping[Tuple[str, str], ExperimentResult],
    objectives: Tuple[Tuple[str, bool], ...] = PARETO_OBJECTIVES,
) -> ParetoFront:
    """Extract the front from an energy-attached sweep.

    Every result must carry energy accounting (``RunConfig.energy``);
    :meth:`ExperimentResult.energy_row` raises otherwise.
    """
    items = []
    for (scenario_name, approach), result in results.items():
        if result.energy is None:
            raise ValueError(
                f"{scenario_name}/{approach}: pareto extraction needs "
                "energy accounting (set RunConfig.energy / --energy)"
            )
        metrics = {
            "allocated_brokers": float(result.allocated_brokers),
            "joules": result.energy.joules,
            "mean_delay_ms": result.summary.mean_delivery_delay * 1000.0,
            "delivery_rate": result.summary.delivery_rate,
        }
        items.append(
            (f"{scenario_name}/{approach}", scenario_name, approach, metrics)
        )
    return ParetoFront.from_vectors(items, objectives)
