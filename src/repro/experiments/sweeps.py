"""Figure/table sweeps as reusable functions.

Each function regenerates one of the paper's figures at a caller-chosen
scale and returns plain row dictionaries, so the same code backs the
benchmark harness, the command-line interface, and ad-hoc notebook use.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, cast

from repro.core.config import RunConfig
from repro.experiments.parallel import CellSpec, execute_cells, run_spec
from repro.experiments.runner import ExperimentResult
from repro.sim.faults import FaultPlan
from repro.workloads.scenarios import (
    Scenario,
    cluster_heterogeneous,
    cluster_homogeneous,
    scinet,
)

MetricKey = str


def run_cell(
    scenario: Scenario,
    approach: str,
    seed: int = 2011,
    cram_failure_budget: Optional[int] = 150,
    fault_plan: Optional[FaultPlan] = None,
    config: Optional[RunConfig] = None,
) -> ExperimentResult:
    """One (scenario, approach) measurement."""
    return run_spec(CellSpec(
        scenario=scenario, approach=approach, seed=seed,
        cram_failure_budget=cram_failure_budget, fault_plan=fault_plan,
        config=config,
    ))


def sweep_specs(
    scenarios: Sequence[Scenario],
    approaches: Sequence[str],
    seed: int = 2011,
    fault_plan: Optional[FaultPlan] = None,
    observe: bool = False,
    config: Optional[RunConfig] = None,
) -> List[CellSpec]:
    """The matrix's cells, in the canonical scenario-major order."""
    return [
        CellSpec(scenario=scenario, approach=approach, seed=seed,
                 fault_plan=fault_plan, observe=observe, config=config)
        for scenario in scenarios
        for approach in approaches
    ]


def sweep(
    scenarios: Sequence[Scenario],
    approaches: Sequence[str],
    seed: int = 2011,
    progress: Optional[Callable[[str], None]] = None,
    fault_plan: Optional[FaultPlan] = None,
    jobs: int = 1,
    observe: bool = False,
    config: Optional[RunConfig] = None,
    profile_dir: Optional[str] = None,
) -> Dict[Tuple[str, str], ExperimentResult]:
    """Run the full (scenario × approach) matrix.

    ``jobs`` fans the independent cells out to a process pool
    (``0`` = one worker per usable CPU); results are merged in the
    serial order and are bit-identical to ``jobs=1`` — see
    :mod:`repro.experiments.parallel` for the determinism contract.
    ``observe`` attaches a per-cell recorder (``result.obs``);
    ``config`` threads one :class:`~repro.core.config.RunConfig` into
    every cell; ``profile_dir`` dumps a cProfile ``.pstats`` per cell
    (forces serial execution).
    """
    specs = sweep_specs(scenarios, approaches, seed=seed, fault_plan=fault_plan,
                        observe=observe, config=config)
    cells = execute_cells(specs, jobs=jobs, progress=progress,
                          profile_dir=profile_dir)
    return {
        (spec.scenario.name, spec.approach): cast(ExperimentResult, result)
        for spec, result in zip(specs, cells)
    }


def figure_rows(
    results: Dict[Tuple[str, str], ExperimentResult],
    scenarios: Sequence[Scenario],
    approaches: Sequence[str],
    metric: MetricKey,
    x_label: str = "total_subscriptions",
) -> List[dict]:
    """Pivot a sweep into one row per scenario, one column per approach."""
    rows = []
    for scenario in scenarios:
        row = {x_label: scenario.total_subscriptions}
        for approach in approaches:
            result = results[(scenario.name, approach)]
            row[approach] = result.as_row()[metric]
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# The paper's figures
# ----------------------------------------------------------------------

def homogeneous_scenarios(
    subs_sweep: Iterable[int] = (50, 100, 150, 200),
    scale: float = 1.0,
    measurement_time: float = 40.0,
) -> List[Scenario]:
    return [
        cluster_homogeneous(
            subscriptions_per_publisher=subs,
            scale=scale,
            measurement_time=measurement_time,
        )
        for subs in subs_sweep
    ]


def heterogeneous_scenarios(
    ns_sweep: Iterable[int] = (50, 100, 150, 200),
    scale: float = 1.0,
    measurement_time: float = 40.0,
) -> List[Scenario]:
    return [
        cluster_heterogeneous(ns=ns, scale=scale, measurement_time=measurement_time)
        for ns in ns_sweep
    ]


def scinet_scenarios(
    scale: float = 1.0, measurement_time: float = 30.0
) -> List[Scenario]:
    return [
        scinet(brokers=brokers, scale=scale, measurement_time=measurement_time)
        for brokers in (400, 1000)
    ]


FIGURES: Dict[str, MetricKey] = {
    "message-rate": "avg_broker_message_rate",
    "brokers": "allocated_brokers",
    "delay": "mean_delivery_delay_ms",
    "hops": "mean_hop_count",
    "msg-rate-reduction": "msg_rate_reduction_pct",
    "broker-reduction": "broker_reduction_pct",
    "computation": "computation_s",
}
