"""Command-line interface: run experiments and regenerate figures.

Usage (after installing the package)::

    python -m repro run --scenario homo --subs 25 --scale 0.25 \
        --approach manual --approach cram-ios
    python -m repro figure --figure brokers --scenario het \
        --subs 12 --subs 25 --scale 0.15 --jobs 4
    python -m repro list

``--jobs N`` fans independent (scenario, approach) cells out to N
worker processes (``0`` = one per CPU) with results bit-identical to
the serial default.

Results print as aligned text tables; ``--csv PATH`` / ``--json PATH``
additionally export machine-readable copies.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from typing import List, Optional, Sequence

from repro.core import allocators
from repro.core.config import RunConfig
from repro.core.croc import ReconfigurationError
from repro.core.energy import EnergySpec
from repro.core.online import OnlineSpec
from repro.experiments.parallel import (
    CellSpec,
    execute_cells,
    set_default_shard_jobs,
)
from repro.experiments.report import format_rows, summarize_pareto
from repro.experiments.runner import available_approaches
from repro.obs import export as obs_export
from repro.obs import report as obs_report
from repro.experiments.sweeps import (
    FIGURES,
    figure_rows,
    heterogeneous_scenarios,
    homogeneous_scenarios,
    pareto_front,
    scinet_scenarios,
    sweep,
)
from repro.sim.faults import FaultPlan

SCENARIO_FAMILIES = ("homo", "het", "scinet")


def _build_scenarios(args) -> list:
    if args.scenario == "homo":
        return homogeneous_scenarios(
            subs_sweep=args.subs, scale=args.scale,
            measurement_time=args.measurement_time,
        )
    if args.scenario == "het":
        return heterogeneous_scenarios(
            ns_sweep=args.subs, scale=args.scale,
            measurement_time=args.measurement_time,
        )
    return scinet_scenarios(scale=args.scale,
                            measurement_time=args.measurement_time)


def _export(rows: List[dict], args) -> None:
    if args.csv:
        with open(args.csv, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=list(rows[0].keys()))
            writer.writeheader()
            writer.writerows(rows)
        print(f"wrote {args.csv}", file=sys.stderr)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(rows, handle, indent=2)
        print(f"wrote {args.json}", file=sys.stderr)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scenario", choices=SCENARIO_FAMILIES, default="homo",
                        help="scenario family (default: homo)")
    parser.add_argument("--subs", type=int, action="append",
                        help="subscriptions per publisher (repeatable; "
                             "default 25; Ns for the heterogeneous family)")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="scenario scale factor, 1.0 = paper size")
    parser.add_argument("--seed", type=int, default=2011)
    parser.add_argument("--measurement-time", type=float, default=40.0,
                        help="virtual seconds per measurement window")
    parser.add_argument("--csv", help="also write rows to this CSV file")
    parser.add_argument("--json", help="also write rows to this JSON file")
    parser.add_argument("--faults", type=FaultPlan.from_spec, default=None,
                        metavar="SPEC",
                        help="fault plan, e.g. "
                             "'crash=0.1,start=5,downtime=30,loss=0.01,"
                             "jitter=0.002,seed=7' ('none' disables)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for independent cells "
                             "(default 1 = serial; 0 = one per CPU); "
                             "results are bit-identical to serial")
    parser.add_argument("--shard-jobs", type=int, default=None, metavar="N",
                        help="worker processes for intra-run Phase-2 "
                             "shards (cram-ios-sharded; default: "
                             "REPRO_SHARD_JOBS or serial; 0 = one per "
                             "CPU); results are bit-identical to serial")
    parser.add_argument("--profile", metavar="DIR", default=None,
                        help="profile each cell with cProfile and write "
                             "DIR/<scenario>__<approach>.pstats (forces "
                             "serial execution; results stay bit-identical)")
    parser.add_argument("--obs", metavar="PATH", default=None,
                        help="record phase spans / counters / timelines "
                             "and write them to PATH (JSONL, or JSON "
                             "with a .json suffix); outputs stay "
                             "bit-identical to an unobserved run")
    parser.add_argument("--online", type=OnlineSpec.from_spec, default=None,
                        metavar="SPEC",
                        help="online incremental reallocation between "
                             "full CROC cycles, e.g. 'inc_trade' or "
                             "'strategy=fij_trade,steps=2,high=0.75,"
                             "low=0.45,drift=0.2,moves=4' "
                             "('none' disables)")
    parser.add_argument("--energy", type=EnergySpec.from_spec, default=None,
                        metavar="SPEC",
                        help="attach post-hoc energy accounting, e.g. "
                             "'default' or 'idle=60,active=90,match=0.05,"
                             "tx=0.02,crashed=0' ('none' disables); "
                             "non-energy outputs stay bit-identical")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Green resource allocation for publish/subscribe "
                    "(ICDCS 2011) — experiment driver",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    approaches = available_approaches()
    run_cmd = commands.add_parser(
        "run", help="run one or more approaches on one scenario family"
    )
    _add_common(run_cmd)
    run_cmd.add_argument("--approach", action="append", choices=approaches,
                         help="repeatable; default: manual + cram-ios")
    run_cmd.add_argument("--pareto", action="store_true",
                         help="rank the approaches by non-dominated "
                              "{brokers, joules, delay, delivery_rate} "
                              "vectors (implies --energy default)")
    run_cmd.add_argument("--energy-out", metavar="PATH", default=None,
                         help="write the energy/pareto records to PATH "
                              "(JSONL, or JSON with a .json suffix) for "
                              "'repro report pareto'")

    figure_cmd = commands.add_parser(
        "figure", help="regenerate one of the paper's figures"
    )
    _add_common(figure_cmd)
    figure_cmd.add_argument("--figure", choices=sorted(FIGURES), required=True)
    figure_cmd.add_argument("--approach", action="append", choices=approaches,
                            help="repeatable; default: all registered")

    report_cmd = commands.add_parser(
        "report", help="summarize a recorded artifact"
    )
    report_cmd.add_argument("kind", choices=["obs", "pareto"],
                            help="artifact type (obs = observation "
                                 "export, pareto = energy export)")
    report_cmd.add_argument("path",
                            help="export written by --obs / --energy-out")
    report_cmd.add_argument("--no-wall", action="store_true",
                            help="omit wall-clock columns (the remaining "
                                 "summary is deterministic)")

    commands.add_parser("list", help="list approaches, figures, scenarios")
    return parser


def _run_config(args) -> Optional[RunConfig]:
    """Fold the config-bearing CLI flags into one RunConfig.

    ``None`` when nothing was set, so default invocations keep shipping
    config-free cell specs (bit-identical to earlier releases).
    """
    online = getattr(args, "online", None)
    shard_jobs = getattr(args, "shard_jobs", None)
    energy = getattr(args, "energy", None)
    if energy is None and getattr(args, "pareto", False):
        # Pareto ranking needs joules; default the model when unset.
        energy = EnergySpec()
    if online is None and shard_jobs is None and energy is None:
        return None
    return RunConfig(shard_jobs=shard_jobs, online=online, energy=energy)


def _write_obs(path: str, labeled_results) -> None:
    """Merge per-cell snapshots (submission order) and write the export."""
    observations = [
        (label, result.obs)
        for label, result in labeled_results
        if result.obs is not None
    ]
    records = obs_export.merge_observations(observations)
    obs_export.write_export(path, records)
    print(f"wrote {path}", file=sys.stderr)


def _print_energy(args, finished) -> int:
    """Energy table, optional Pareto ranking, optional export file.

    ``finished`` is the list of ``(CellSpec, ExperimentResult)`` pairs
    that completed; failed cells are already reported by the caller.
    """
    if not finished:
        return 0
    energy_rows = [cell.energy_row() for _spec, cell in finished]
    print()
    print("energy:")
    print(format_rows(energy_rows))
    front = None
    if args.pareto:
        results = {
            (spec.scenario.name, spec.approach): cell
            for spec, cell in finished
        }
        front = pareto_front(results)
        objectives = " ".join(
            f"{key}{'↑' if maximize else '↓'}"
            for key, maximize in front.objectives
        )
        print()
        print(f"pareto ranking ({objectives}; * = non-dominated):")
        print(format_rows(front.rows()))
    if args.energy_out:
        labeled = []
        for spec, cell in finished:
            scenario_name = spec.scenario.name
            label = f"{scenario_name}/{spec.approach}"
            labeled.append((label, cell.energy.export_record(
                label, scenario_name, spec.approach)))
        records = obs_export.energy_export(labeled)
        if front is not None:
            for entry in front.entries:
                records.append({
                    "record": "pareto",
                    "cell": entry.cell,
                    "scenario": entry.scenario,
                    "approach": entry.approach,
                    "rank": entry.rank,
                    "front": entry.rank == 1,
                })
        obs_export.write_export(args.energy_out, records)
        print(f"wrote {args.energy_out}", file=sys.stderr)
    return 0


def cmd_run(args) -> int:
    approaches = args.approach or ["manual", "cram-ios"]
    scenarios = _build_scenarios(args)
    config = _run_config(args)
    specs = [
        CellSpec(scenario=scenario, approach=approach, seed=args.seed,
                 fault_plan=args.faults, observe=bool(args.obs),
                 config=config)
        for scenario in scenarios
        for approach in approaches
    ]
    cells = execute_cells(
        specs, jobs=args.jobs,
        progress=lambda label: print(f"running {label} ...", file=sys.stderr),
        return_exceptions=True,
        profile_dir=args.profile,
    )
    rows = []
    failures = []
    for spec, cell in zip(specs, cells):
        if isinstance(cell, BaseException):  # keep the remaining cells
            print(f"error: {spec.label}: {cell}", file=sys.stderr)
            failures.append((spec.scenario.name, spec.approach, cell))
            continue
        rows.append(cell.as_row())
    if rows:
        print(format_rows(rows))
        _export(rows, args)
    if config is not None and config.energy is not None:
        finished = [
            (spec, cell) for spec, cell in zip(specs, cells)
            if not isinstance(cell, BaseException)
        ]
        _print_energy(args, finished)
    if args.obs:
        _write_obs(args.obs, [
            (f"{spec.scenario.name}/{spec.approach}", cell)
            for spec, cell in zip(specs, cells)
            if not isinstance(cell, BaseException)
        ])
    if failures:
        print(f"{len(failures)} cell(s) failed:", file=sys.stderr)
        for scenario_name, approach, exc in failures:
            print(f"  {scenario_name} / {approach}: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_figure(args) -> int:
    approaches = tuple(args.approach or available_approaches())
    scenarios = _build_scenarios(args)
    try:
        results = sweep(
            scenarios, approaches, seed=args.seed,
            progress=lambda label: print(f"running {label} ...", file=sys.stderr),
            fault_plan=args.faults,
            jobs=args.jobs,
            observe=bool(args.obs),
            config=_run_config(args),
            profile_dir=args.profile,
        )
    except ReconfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows = figure_rows(results, scenarios, approaches, FIGURES[args.figure])
    print(f"figure: {args.figure} ({FIGURES[args.figure]})")
    print(format_rows(rows))
    if rows:
        _export(rows, args)
    if args.obs:
        _write_obs(args.obs, [
            (f"{scenario_name}/{approach}", result)
            for (scenario_name, approach), result in results.items()
        ])
    return 0


def cmd_report(args) -> int:
    try:
        records = obs_export.read_export(args.path)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    try:
        if args.kind == "pareto":
            summary = summarize_pareto(records)
        else:
            summary = obs_report.summarize(
                records, include_wall=not args.no_wall)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(summary, end="")
    return 0


def cmd_list(_args) -> int:
    print("approaches:")
    for approach in available_approaches():
        caps = ""
        if allocators.is_registered(approach):
            declared = sorted(allocators.capabilities(approach))
            if declared:
                caps = f"  [{', '.join(declared)}]"
        print(f"  {approach}{caps}")
    print("figures:")
    for name, metric in sorted(FIGURES.items()):
        print(f"  {name:20s} -> {metric}")
    print("scenario families:")
    for family in SCENARIO_FAMILIES:
        print(f"  {family}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command in ("run", "figure") and not args.subs:
        args.subs = [25]
    if getattr(args, "shard_jobs", None) is not None:
        set_default_shard_jobs(args.shard_jobs)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "figure":
        return cmd_figure(args)
    if args.command == "report":
        return cmd_report(args)
    return cmd_list(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
