"""Plain-text rendering of broker trees and deployments.

Operators (and the examples) want to *see* the overlay CROC built:
the tree shape, which brokers host subscriptions, how loaded each one
is.  Everything renders to ASCII so it works in logs and CI output.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.deployment import BrokerTree, Deployment
from repro.core.profiles import PublisherDirectory


def render_tree(
    tree: BrokerTree,
    directory: Optional[PublisherDirectory] = None,
    publisher_placement: Optional[Dict[str, str]] = None,
) -> str:
    """An indented ASCII tree with per-broker annotations.

    Example output::

        B0007  [12 subs, 4.8 kB/s]  <- adv-YHOO, adv-MSFT
        ├── B0003  [30 subs, 9.1 kB/s]
        └── B0001  [18 subs, 6.0 kB/s]
    """
    publishers_at: Dict[str, List[str]] = {}
    if publisher_placement:
        for adv_id, broker_id in sorted(publisher_placement.items()):
            publishers_at.setdefault(broker_id, []).append(adv_id)

    def annotate(broker_id: str) -> str:
        units = tree.broker_units.get(broker_id, [])
        subs = sum(
            unit.subscription_count for unit in units if unit.kind == "subscription"
        )
        parts = [broker_id]
        details = []
        if subs:
            details.append(f"{subs} subs")
        if directory is not None:
            bandwidth = sum(
                unit.delivery_bandwidth
                for unit in units
                if unit.kind == "subscription"
            )
            if bandwidth > 0:
                details.append(f"{bandwidth:.1f} kB/s")
        if details:
            parts.append(f"[{', '.join(details)}]")
        local_publishers = publishers_at.get(broker_id)
        if local_publishers:
            parts.append("<- " + ", ".join(local_publishers))
        return "  ".join(parts)

    lines: List[str] = [annotate(tree.root)]

    def walk(broker_id: str, prefix: str) -> None:
        children = tree.children(broker_id)
        for index, child in enumerate(children):
            last = index == len(children) - 1
            connector = "└── " if last else "├── "
            lines.append(prefix + connector + annotate(child))
            walk(child, prefix + ("    " if last else "│   "))

    walk(tree.root, "")
    return "\n".join(lines)


def render_deployment(deployment: Deployment,
                      directory: Optional[PublisherDirectory] = None) -> str:
    """Tree rendering plus placement summary counts."""
    header = (
        f"deployment ({deployment.approach or 'unnamed'}): "
        f"{len(deployment.tree)} brokers, "
        f"{len(deployment.subscription_placement)} subscriptions, "
        f"{len(deployment.publisher_placement)} publishers"
    )
    body = render_tree(
        deployment.tree, directory, deployment.publisher_placement
    )
    return f"{header}\n{body}"


def render_broker_loads(per_broker_rates: Dict[str, float],
                        width: int = 40) -> str:
    """A horizontal bar chart of per-broker message rates.

    Used to eyeball load balance after a reconfiguration::

        B0001 | ############################    132.1 msg/s
        B0007 | ######                           31.9 msg/s
    """
    if not per_broker_rates:
        return "(no brokers)"
    peak = max(per_broker_rates.values()) or 1.0
    label_width = max(len(broker) for broker in per_broker_rates)
    lines = []
    for broker_id in sorted(per_broker_rates):
        rate = per_broker_rates[broker_id]
        bar = "#" * max(0, round(width * rate / peak))
        lines.append(
            f"{broker_id.ljust(label_width)} | {bar.ljust(width)} {rate:8.1f} msg/s"
        )
    return "\n".join(lines)
