"""Experiment harness: scenarios, reconfiguration, reporting, tooling."""

from __future__ import annotations

from repro.experiments.continuous import (
    ContinuousReconfigurator,
    CycleReport,
    OnlineScheduler,
    RateDrift,
    SubscriberChurn,
)
from repro.experiments.parallel import CellSpec, execute_cells, run_spec
from repro.experiments.report import format_rows, reduction
from repro.experiments.runner import APPROACHES, ExperimentResult, ExperimentRunner
from repro.experiments.sweeps import (
    FIGURES,
    PARETO_OBJECTIVES,
    ParetoEntry,
    ParetoFront,
    figure_rows,
    pareto_front,
    run_cell,
    sweep,
    sweep_specs,
)
from repro.experiments.visualize import (
    render_broker_loads,
    render_deployment,
    render_tree,
)

__all__ = [
    "APPROACHES",
    "CellSpec",
    "ExperimentResult",
    "ExperimentRunner",
    "execute_cells",
    "run_spec",
    "sweep_specs",
    "ContinuousReconfigurator",
    "CycleReport",
    "OnlineScheduler",
    "RateDrift",
    "SubscriberChurn",
    "format_rows",
    "reduction",
    "FIGURES",
    "PARETO_OBJECTIVES",
    "ParetoEntry",
    "ParetoFront",
    "pareto_front",
    "figure_rows",
    "run_cell",
    "sweep",
    "render_broker_loads",
    "render_deployment",
    "render_tree",
]
