"""Experiment harness: scenarios, reconfiguration, reporting, tooling."""

from __future__ import annotations

from repro.experiments.continuous import (
    ContinuousReconfigurator,
    CycleReport,
    OnlineScheduler,
    RateDrift,
    SubscriberChurn,
)
from repro.experiments.parallel import CellSpec, execute_cells, run_spec
from repro.experiments.report import format_rows, reduction
from repro.experiments.runner import APPROACHES, ExperimentResult, ExperimentRunner
from repro.experiments.sweeps import FIGURES, figure_rows, run_cell, sweep, sweep_specs
from repro.experiments.visualize import (
    render_broker_loads,
    render_deployment,
    render_tree,
)

__all__ = [
    "APPROACHES",
    "CellSpec",
    "ExperimentResult",
    "ExperimentRunner",
    "execute_cells",
    "run_spec",
    "sweep_specs",
    "ContinuousReconfigurator",
    "CycleReport",
    "OnlineScheduler",
    "RateDrift",
    "SubscriberChurn",
    "format_rows",
    "reduction",
    "FIGURES",
    "figure_rows",
    "run_cell",
    "sweep",
    "render_broker_loads",
    "render_deployment",
    "render_tree",
]
