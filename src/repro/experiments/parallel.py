"""Deterministic process-pool execution of independent sweep cells.

The paper's evaluation is a matrix of (scenario × approach) cells.
Every cell is an isolated simulation: it builds its own network, seeds
its own RNG streams from ``(seed, scenario.name, …)``, and touches no
shared mutable state — so the matrix is embarrassingly parallel.  This
module fans cells out to a pool of **spawned** worker processes and
merges the results in submission order, with three guarantees:

* **Bit-identity** — a cell's result is a pure function of its
  :class:`CellSpec`, so ``execute_cells(specs, jobs=N)`` returns
  exactly the rows, metric floats, and evaluation counters of the
  serial path for every ``N`` (pinned by
  ``tests/test_parallel_equivalence.py``).  The one exception is
  ``computation_seconds``, a wall-clock *measurement* of the allocator
  run, which is not part of the determinism contract.
* **Spawn-safety** — workers start from a fresh interpreter (no
  inherited fork state), re-import :mod:`repro`, and replay any
  allocator registrations beyond the built-ins
  (:func:`repro.core.allocators.custom_registrations`), so registry
  approaches resolve inside workers.  Custom builders must be
  module-level callables; unpicklable ones are rejected up front with
  a pointed error instead of a cryptic pool crash.
* **Graceful fallback** — ``jobs <= 1``, a single cell, or a platform
  where the pool cannot start all run serially in-process, same code
  path as :func:`repro.experiments.sweeps.run_cell`.
"""

from __future__ import annotations

import cProfile
import os
import pickle
import re
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.core import allocators, cram
# SHARD_JOBS_ENV_VAR moved to repro.core.config (the consolidated
# RunConfig home) and stays re-exported here for its historical users.
from repro.core.config import SHARD_JOBS_ENV_VAR as SHARD_JOBS_ENV_VAR
from repro.core.config import RunConfig, shard_jobs_from_env
from repro.experiments.runner import ExperimentResult, ExperimentRunner
from repro.obs import recorder as obs
from repro.sim.faults import FaultPlan
from repro.workloads.scenarios import Scenario

#: Registration list shipped to each worker: the exact
#: :class:`~repro.core.allocators.AllocatorSpec` records the parent
#: registered beyond the built-ins (capabilities included).
RegistrySnapshot = Tuple[allocators.AllocatorSpec, ...]


@dataclass(frozen=True)
class CellSpec:
    """One picklable (scenario, approach, seed, fault_plan) cell.

    Carries everything a worker needs to reproduce the cell from
    scratch; equal specs produce bit-identical results in any process.
    """

    scenario: Scenario
    approach: str
    seed: int = 2011
    cram_failure_budget: Optional[int] = 150
    fault_plan: Optional[FaultPlan] = None
    #: Attach a fresh :class:`repro.obs.Recorder` for this cell and
    #: ship its snapshot back on ``result.obs``.  Does not change the
    #: deterministic outputs (pinned by ``tests/test_obs_equivalence``).
    observe: bool = False
    #: The performance / online-reallocation knobs for this cell.
    #: ``RunConfig`` is frozen and picklable, so a spec carries the
    #: exact configuration into spawned workers instead of relying on
    #: inherited environment variables.  ``None`` = all defaults.
    config: Optional[RunConfig] = None

    @property
    def label(self) -> str:
        """The progress label, matching the serial sweep's format."""
        return f"{self.scenario.name} / {self.approach}"


def run_spec(spec: CellSpec) -> ExperimentResult:
    """Execute one cell.  The worker-side entry point — and the serial
    path: both funnel through here so they cannot drift apart."""
    runner = ExperimentRunner(
        spec.scenario,
        seed=spec.seed,
        cram_failure_budget=spec.cram_failure_budget,
        fault_plan=spec.fault_plan,
        config=spec.config,
    )
    shard_override = spec.config.shard_jobs if spec.config is not None else None
    previous = _default_shard_jobs
    if shard_override is not None:
        # The spec's explicit shard count beats any ambient default or
        # environment variable for the duration of this cell.
        set_default_shard_jobs(shard_override)
    try:
        if not spec.observe:
            return runner.run(spec.approach)
        with obs.attached(obs.Recorder()) as recorder:
            result = runner.run(spec.approach)
        result.obs = recorder.snapshot()
        return result
    finally:
        if shard_override is not None:
            set_default_shard_jobs(previous)


def resolve_jobs(jobs: int) -> int:
    """Normalize a ``--jobs`` value: ``0`` means one per CPU.

    Uses the scheduler affinity mask where available (containers and
    CI runners often expose fewer usable cores than ``cpu_count``).
    """
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return usable_cpus()
    return jobs


def usable_cpus() -> int:
    """CPUs this process may actually run on."""
    affinity = getattr(os, "sched_getaffinity", None)
    if affinity is not None:
        try:
            return max(1, len(affinity(0)))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return max(1, os.cpu_count() or 1)


def _ensure_spawnable(snapshot: RegistrySnapshot) -> None:
    """Reject custom allocator builders a spawned worker cannot import."""
    for spec in snapshot:
        try:
            pickle.dumps(spec.builder)
        except Exception as exc:
            raise ValueError(
                f"allocator {spec.name!r} is registered with a builder that "
                f"cannot be pickled for pool workers ({exc}); register a "
                "module-level callable (not a lambda, closure, or locally "
                "defined function) or run with jobs=1"
            ) from None


def _worker_init(snapshot: RegistrySnapshot) -> None:
    """Per-worker setup: mirror the parent's non-built-in registrations."""
    for spec in snapshot:
        name, builder = spec.name, spec.builder
        # Replays builders the parent already proved picklable (the
        # snapshot itself crossed the process boundary); audited in
        # reprolint-baseline.json.
        allocators.register(
            name, builder, capabilities=spec.capabilities, replace=True
        )


def _profile_path(profile_dir: str, spec: CellSpec) -> str:
    """``DIR/<scenario>__<approach>.pstats``, filesystem-sanitized."""
    stem = re.sub(
        r"[^A-Za-z0-9._-]+", "-", f"{spec.scenario.name}__{spec.approach}"
    )
    return os.path.join(profile_dir, f"{stem}.pstats")


def _run_one(spec: CellSpec, profile_dir: Optional[str]) -> ExperimentResult:
    """One cell, optionally under cProfile.

    The profile wraps the whole of :func:`run_spec` — network build,
    allocation, measurement — and is dumped even when the cell raises,
    so a crashing configuration still leaves its hot-path evidence.
    Profiling measures wall time but never feeds results, so profiled
    runs stay bit-identical to bare ones.
    """
    if profile_dir is None:
        return run_spec(spec)
    profile = cProfile.Profile()
    try:
        return profile.runcall(run_spec, spec)
    finally:
        profile.dump_stats(_profile_path(profile_dir, spec))


def _run_serial(
    specs: Sequence[CellSpec],
    progress: Optional[Callable[[str], None]],
    return_exceptions: bool,
    profile_dir: Optional[str] = None,
) -> List[Union[ExperimentResult, BaseException]]:
    results: List[Union[ExperimentResult, BaseException]] = []
    for spec in specs:
        if progress is not None:
            progress(spec.label)
        if return_exceptions:
            try:
                results.append(_run_one(spec, profile_dir))
            except Exception as exc:
                results.append(exc)
        else:
            results.append(_run_one(spec, profile_dir))
    return results


def execute_cells(
    specs: Sequence[CellSpec],
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    return_exceptions: bool = False,
    profile_dir: Optional[str] = None,
) -> List[Union[ExperimentResult, BaseException]]:
    """Run every cell and return results in submission order.

    Parameters
    ----------
    specs:
        The cells, in the order their results should be returned.
    jobs:
        Worker process count; ``0`` = one per usable CPU, ``<= 1``
        runs serially in-process.
    progress:
        Optional callback receiving each cell's label.  Serial mode
        calls it just before the cell runs; parallel mode calls it as
        results are collected, in the same deterministic order.
    return_exceptions:
        When set, a failing cell contributes its exception object in
        place of a result instead of aborting the whole sweep (the
        CLI's keep-going semantics).  Otherwise the first failure
        propagates.
    profile_dir:
        Dump one cProfile ``.pstats`` file per cell into this
        directory (``<scenario>__<approach>.pstats``).  Forces serial
        execution — a meaningful profile needs the cell alone on the
        interpreter, and worker processes could not ship profiler
        state back.  Results stay bit-identical.
    """
    jobs = resolve_jobs(jobs)
    if profile_dir is not None:
        os.makedirs(profile_dir, exist_ok=True)
        if jobs > 1 and progress is not None:
            progress(f"[profile] profiling forces serial execution (jobs={jobs} ignored)")
        return _run_serial(specs, progress, return_exceptions, profile_dir)
    if jobs <= 1 or len(specs) <= 1:
        return _run_serial(specs, progress, return_exceptions)

    snapshot = allocators.custom_registrations()
    _ensure_spawnable(snapshot)
    try:
        # spawn, not fork: workers must re-import repro from scratch so
        # results cannot depend on inherited parent-process state.
        context = get_context("spawn")
        pool = ProcessPoolExecutor(
            max_workers=min(jobs, len(specs)),
            mp_context=context,
            initializer=_worker_init,
            initargs=(snapshot,),
        )
    except (OSError, ValueError, ImportError) as exc:
        # Pool unavailable (no spawn support, process limits, …):
        # degrade to the serial path rather than failing the sweep.
        if progress is not None:
            progress(f"[parallel] pool unavailable ({exc}); running serially")
        return _run_serial(specs, progress, return_exceptions)

    results: List[Union[ExperimentResult, BaseException]] = []
    try:
        with pool:
            futures: List[Future] = [pool.submit(run_spec, spec) for spec in specs]
            for spec, future in zip(specs, futures):
                if progress is not None:
                    progress(spec.label)
                try:
                    result: Union[ExperimentResult, BaseException] = future.result()
                except BrokenExecutor:
                    raise  # the pool itself died — handled below
                except Exception as exc:
                    if not return_exceptions:
                        raise
                    result = exc
                results.append(result)
    except BrokenExecutor as exc:
        # Workers could not start or were killed (sandboxes, rlimits,
        # OOM): cells are pure, so rerunning the whole batch serially
        # yields the identical result set.
        if progress is not None:
            progress(f"[parallel] worker pool broke ({exc}); rerunning serially")
        return _run_serial(specs, progress, return_exceptions)
    return results


# ----------------------------------------------------------------------
# Shard runner: ShardedCramAllocator tasks on the spawn pool
# ----------------------------------------------------------------------

#: Explicit override of the shard job count (``--shard-jobs``); ``None``
#: defers to :data:`SHARD_JOBS_ENV_VAR`.
_default_shard_jobs: Optional[int] = None


def set_default_shard_jobs(jobs: Optional[int]) -> None:
    """Set the shard job count used when :func:`run_shards` gets none."""
    global _default_shard_jobs
    _default_shard_jobs = jobs


def shard_jobs() -> int:
    """Resolve the shard job count: explicit default, env, else 1.

    Serial is the default on purpose: shard tasks may themselves run
    inside sweep-pool workers, and only an explicit opt-in should nest
    process pools.
    """
    if _default_shard_jobs is not None:
        return resolve_jobs(_default_shard_jobs)
    return resolve_jobs(shard_jobs_from_env(default=1))


def run_shards(
    tasks: Sequence[cram.ShardTask], jobs: Optional[int] = None
) -> List[cram.ShardOutcome]:
    """Execute shard tasks, returning outcomes in submission order.

    The pool variant of :func:`repro.core.cram.run_shards_serial` with
    the same degradation ladder as :func:`execute_cells`: ``jobs <= 1``
    or a single task runs serially in-process, and any pool-level
    failure falls back to the serial path.  Shard outcomes are pure
    functions of their tasks, so every path is bit-identical.
    """
    jobs = shard_jobs() if jobs is None else resolve_jobs(jobs)
    if jobs <= 1 or len(tasks) <= 1:
        return cram.run_shards_serial(tasks)
    try:
        context = get_context("spawn")
        pool = ProcessPoolExecutor(
            max_workers=min(jobs, len(tasks)), mp_context=context
        )
    except (OSError, ValueError, ImportError):
        return cram.run_shards_serial(tasks)
    try:
        with pool:
            futures: List[Future] = [
                pool.submit(cram.run_shard_task, task) for task in tasks
            ]
            # Submission-order collection — never a set/dict of futures.
            return [future.result() for future in futures]
    except BrokenExecutor:
        return cram.run_shards_serial(tasks)


# Installing at import time wires every ShardedCramAllocator (registry
# builds included) to the pool runner whenever the experiments layer is
# in play; pure-core users keep the serial default.
cram.install_shard_runner(run_shards)
