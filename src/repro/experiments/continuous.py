"""Continuous operation: periodic reconfiguration under workload drift.

The paper reconfigures once, from a profiled steady state.  In a real
deployment the workload drifts — publishers speed up or slow down,
subscribers come and go — and the natural extension (the paper's
closing direction) is to re-run CROC periodically.  This module
implements that control loop plus a drifting-workload driver, so the
question "does periodic reconfiguration track the workload?" becomes a
measurable experiment (see ``examples/adaptive_reconfiguration.py``).

Each cycle: let the CBCs re-profile the current traffic, run the full
3-phase reconfiguration, measure the steady state, and record how many
brokers the system needed *this* cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.croc import Croc, ReconfigurationError
from repro.obs import recorder as obs
from repro.pubsub.metrics import MetricsSummary
from repro.pubsub.network import PubSubNetwork


@dataclass
class CycleReport:
    """Outcome of one profile → reconfigure → measure cycle."""

    cycle: int
    virtual_time: float
    allocated_brokers: int
    summary: MetricsSummary
    subscriptions_profiled: int
    reconfigured: bool
    skipped_reason: str = ""
    degraded: bool = False
    rolled_back: bool = False

    def as_row(self) -> dict:
        return {
            "cycle": self.cycle,
            "t": round(self.virtual_time, 1),
            "allocated_brokers": self.allocated_brokers,
            "avg_broker_message_rate": round(
                self.summary.avg_broker_message_rate, 3
            ),
            "deliveries": self.summary.delivery_count,
            "delivery_rate": round(self.summary.delivery_rate, 4),
            "reconfigured": self.reconfigured,
            "degraded": self.degraded,
            "rolled_back": self.rolled_back,
        }


class ContinuousReconfigurator:
    """Periodic CROC control loop.

    Parameters
    ----------
    croc:
        The coordinator to re-run each cycle.
    profiling_time / measurement_time:
        Virtual seconds per cycle spent re-filling bit vectors and
        measuring the reconfigured system.
    on_cycle_start:
        Optional hook, called with the cycle index before profiling —
        the drift driver (rate changes, churn) plugs in here.
    """

    def __init__(
        self,
        croc: Croc,
        profiling_time: float = 60.0,
        measurement_time: float = 30.0,
        on_cycle_start: Optional[Callable[[int], None]] = None,
    ):
        self.croc = croc
        self.profiling_time = profiling_time
        self.measurement_time = measurement_time
        self.on_cycle_start = on_cycle_start
        self.reports: List[CycleReport] = []

    def run(self, network: PubSubNetwork, cycles: int) -> List[CycleReport]:
        """Execute ``cycles`` reconfiguration cycles on a live network."""
        pool = network.broker_pool()
        bandwidths = {spec.broker_id: spec.total_output_bandwidth for spec in pool}
        for cycle in range(cycles):
            if self.on_cycle_start is not None:
                self.on_cycle_start(cycle)
            with obs.span("cycle", index=cycle) as cycle_span:
                with obs.span("cycle.profile"):
                    network.run(self.profiling_time)
                reconfigured = True
                skipped = ""
                subscriptions = 0
                degraded = False
                rolled_back = False
                try:
                    report = self.croc.reconfigure(network)
                    subscriptions = report.gather.subscription_count
                    degraded = report.gather.degraded
                    if not report.applied:
                        # Aborted / rolled back mid-apply; the previous
                        # deployment keeps serving traffic.
                        reconfigured = False
                        rolled_back = True
                        skipped = report.rollback_reason
                except ReconfigurationError as exc:
                    # Keep the current deployment; record why.
                    reconfigured = False
                    skipped = str(exc)
                network.metrics.reset_window()
                with obs.span("cycle.measure"):
                    network.run(self.measurement_time)
                summary = network.metrics.summary(
                    len(pool), network.active_brokers, bandwidths
                )
                cycle_span.set(reconfigured=reconfigured, rolled_back=rolled_back)
            self.reports.append(
                CycleReport(
                    cycle=cycle,
                    virtual_time=network.sim.now,
                    allocated_brokers=len(network.active_brokers),
                    summary=summary,
                    subscriptions_profiled=subscriptions,
                    reconfigured=reconfigured,
                    skipped_reason=skipped,
                    degraded=degraded,
                    rolled_back=rolled_back,
                )
            )
        return self.reports


class SubscriberChurn:
    """A drift driver that detaches and re-attaches subscribers.

    Each cycle, a random ``leave_fraction`` of the currently attached
    subscribers unsubscribe and detach, and a random subset of the
    previously departed rejoin at a random *active* broker with their
    original subscriptions.  The next CROC run then sees a genuinely
    different subscription pool — the churn scenario the paper's
    one-shot evaluation leaves open.
    """

    def __init__(self, network: PubSubNetwork, rng,
                 leave_fraction: float = 0.2, rejoin_fraction: float = 0.5):
        if not 0.0 <= leave_fraction <= 1.0:
            raise ValueError("leave_fraction must be within [0, 1]")
        if not 0.0 <= rejoin_fraction <= 1.0:
            raise ValueError("rejoin_fraction must be within [0, 1]")
        self._network = network
        self._rng = rng
        self.leave_fraction = leave_fraction
        self.rejoin_fraction = rejoin_fraction
        self._departed: List[str] = []
        self.left_total = 0
        self.rejoined_total = 0

    def __call__(self, cycle: int) -> None:
        network = self._network
        # Rejoin first so a cycle never empties the system.
        rejoining = [
            client_id
            for client_id in list(self._departed)
            if self._rng.random() < self.rejoin_fraction
        ]
        active = network.active_brokers
        for client_id in rejoining:
            self._departed.remove(client_id)
            subscriber = network.subscribers[client_id]
            broker_id = self._rng.choice(active)
            network.brokers[broker_id].attach_client(client_id)
            subscriber.attached(network, broker_id)
            self.rejoined_total += 1
        attached = [
            subscriber
            for subscriber in network.subscribers.values()
            if subscriber.broker_id is not None
        ]
        leavers = [
            subscriber
            for subscriber in attached
            if self._rng.random() < self.leave_fraction
        ]
        if len(leavers) >= len(attached):
            leavers = leavers[:-1]  # always keep at least one subscriber
        for subscriber in leavers:
            for subscription in list(subscriber.subscriptions):
                # Retract in the overlay but keep the subscription object
                # so the client can re-issue it when rejoining.
                from repro.pubsub.message import (
                    CONTROL_MESSAGE_KB,
                    Unsubscription,
                )

                network.client_send(
                    subscriber.client_id,
                    subscriber.broker_id,
                    Unsubscription(subscription.sub_id, subscriber.client_id),
                    CONTROL_MESSAGE_KB,
                )
            network.brokers[subscriber.broker_id].detach_client(
                subscriber.client_id
            )
            subscriber.detached()
            subscriber.departed = True
            self._departed.append(subscriber.client_id)
            self.left_total += 1


class RateDrift:
    """A drift driver that scales publisher rates each cycle.

    ``factors[i % len(factors)]`` multiplies every publisher's *base*
    rate in cycle ``i`` — e.g. ``(1.0, 2.0, 0.5)`` models a market-open
    burst followed by a quiet period.  Rates take effect at the next
    publication the client schedules.
    """

    def __init__(self, network: PubSubNetwork, factors=(1.0, 2.0, 0.5)):
        self._network = network
        self._factors = tuple(factors)
        self._base_rates = {
            client_id: publisher.rate
            for client_id, publisher in network.publishers.items()
        }

    def __call__(self, cycle: int) -> None:
        factor = self._factors[cycle % len(self._factors)]
        for client_id, publisher in self._network.publishers.items():
            publisher.rate = self._base_rates[client_id] * factor
