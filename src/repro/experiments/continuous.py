"""Continuous operation: periodic reconfiguration under workload drift.

The paper reconfigures once, from a profiled steady state.  In a real
deployment the workload drifts — publishers speed up or slow down,
subscribers come and go — and the natural extension (the paper's
closing direction) is to re-run CROC periodically.  This module
implements that control loop plus a drifting-workload driver, so the
question "does periodic reconfiguration track the workload?" becomes a
measurable experiment (see ``examples/adaptive_reconfiguration.py``).

Each cycle: let the CBCs re-profile the current traffic, run the full
3-phase reconfiguration, measure the steady state, and record how many
brokers the system needed *this* cycle.

With an :class:`~repro.core.online.OnlineSpec` the loop runs a *mixed*
schedule instead: the profiling phase is cut into ``steps + 1`` equal
slices, and after each of the first ``steps`` slices the
:class:`OnlineScheduler` feeds the window's per-broker output rates to
a fitted :class:`~repro.sim.estimator.BrokerLoadEstimator` and executes
at most ``max_moves`` individual subscription migrations planned by an
incremental strategy (``inc_trade`` / ``fij_trade``).  When the
estimator's drift against the post-reconfiguration baseline stays
under ``drift_threshold`` the expensive full CROC run is skipped for
that cycle — the online steps alone track the workload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.croc import Croc, ReconfigurationError
from repro.core.energy import EnergyAccountant, EnergySpec
from repro.core.floats import EPSILON
from repro.core.online import (
    BrokerLoad,
    MigrationPlan,
    OnlineSpec,
    SubscriptionLoad,
    make_strategy,
)
from repro.obs import recorder as obs
from repro.pubsub.message import CONTROL_MESSAGE_KB, Unsubscription
from repro.pubsub.metrics import MetricsSummary
from repro.pubsub.network import PubSubNetwork
from repro.sim.estimator import BrokerLoadEstimator


@dataclass(frozen=True)
class CycleReport:
    """Outcome of one profile → reconfigure → measure cycle.

    Frozen: reports are historical records, shared across report tables
    and benchmarks; mutating one after the fact would silently skew
    every consumer (same convention as the obs-layer snapshots).
    """

    cycle: int
    virtual_time: float
    allocated_brokers: int
    summary: MetricsSummary
    subscriptions_profiled: int
    reconfigured: bool
    skipped_reason: str = ""
    degraded: bool = False
    rolled_back: bool = False
    #: Mixed-schedule outcome: online steps executed this cycle, the
    #: subscriptions they moved, the summed virtual seconds their
    #: owners spent detached, and the estimator drift vs the baseline
    #: captured at the last applied full reconfiguration.
    online_steps: int = 0
    subscriptions_moved: int = 0
    migration_gap_s: float = 0.0
    drift: float = 0.0
    #: Pool-autoscaler outcome (``OnlineSpec.autoscale``): the broker
    #: count the estimator's predicted load asked for this cycle, and
    #: its difference from the allocation entering the cycle.  Both 0
    #: when the autoscaler is off.
    autoscale_target: int = 0
    autoscale_delta: int = 0
    #: Energy accounted over this cycle's measurement window
    #: (``RunConfig.energy``); 0.0 when the model is detached.
    joules: float = 0.0
    joules_per_delivery: float = 0.0

    def as_row(self) -> dict:
        return {
            "cycle": self.cycle,
            "t": round(self.virtual_time, 1),
            "allocated_brokers": self.allocated_brokers,
            "avg_broker_message_rate": round(
                self.summary.avg_broker_message_rate, 3
            ),
            "deliveries": self.summary.delivery_count,
            "delivery_rate": round(self.summary.delivery_rate, 4),
            "reconfigured": self.reconfigured,
            "degraded": self.degraded,
            "rolled_back": self.rolled_back,
            "online_steps": self.online_steps,
            "subscriptions_moved": self.subscriptions_moved,
            "migration_gap_s": round(self.migration_gap_s, 4),
            "drift": round(self.drift, 4),
            "autoscale_target": self.autoscale_target,
            "autoscale_delta": self.autoscale_delta,
            "joules": round(self.joules, 4),
            "joules_per_delivery": round(self.joules_per_delivery, 6),
        }


class OnlineScheduler:
    """Estimator-driven migration stepper for the mixed schedule.

    Owns the per-network state the online strategies need: a
    :class:`BrokerLoadEstimator` fed with per-broker output rates
    (kB/s over the current metrics window, the same load unit Phase 2
    budgets against ``total_output_bandwidth``), cumulative delivery
    counts used to attribute broker load to individual subscriptions,
    and the baseline load vector the drift check compares against.

    Everything here is deterministic: brokers and subscribers are
    visited in sorted id order, load attribution is pure arithmetic on
    counters that are identical with or without an obs recorder, and
    migration execution advances only virtual time.
    """

    def __init__(
        self,
        network: PubSubNetwork,
        spec: OnlineSpec,
        planner=None,
    ):
        self.network = network
        self.spec = spec
        #: Any object with ``plan_migrations(brokers, subscriptions)``
        #: — a core strategy by default, or an allocator registered
        #: with the ``incremental`` capability.
        self.planner = planner if planner is not None else make_strategy(spec)
        self.estimator = BrokerLoadEstimator(
            window=spec.window, horizon=spec.horizon
        )
        self.baseline: Dict[str, float] = {}
        self._capacity = {
            broker.broker_id: broker.total_output_bandwidth
            for broker in network.broker_pool()
        }
        self._last_delivered: Dict[str, int] = {}
        self.steps_run = 0
        self.subscriptions_moved = 0
        self.migration_gap_s = 0.0

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def observe_window(self) -> Dict[str, float]:
        """Feed the current window's per-broker kB/s to the estimator."""
        metrics = self.network.metrics
        duration = self.network.sim.now - metrics.window_start
        if duration <= EPSILON:
            return {}
        loads = {
            broker_id: self.network.metrics.bytes_out_total(broker_id) / duration
            for broker_id in sorted(self.network.brokers)
        }
        self.estimator.observe_loads(self.network.sim.now, loads)
        return loads

    def broker_loads(self) -> List[BrokerLoad]:
        """Predicted loads for the brokers migrations may target.

        Restricted to brokers that are in the active deployment and not
        currently crashed — attaching a subscriber to a broker outside
        the overlay would strand its subscriptions.
        """
        loads: List[BrokerLoad] = []
        for broker_id in sorted(self.network.active_brokers):
            if self.network.broker_is_down(broker_id):
                continue
            capacity = self._capacity.get(broker_id, 0.0)
            if capacity <= 0:
                continue
            loads.append(
                BrokerLoad(broker_id, capacity, self.estimator.predict(broker_id))
            )
        return loads

    def subscription_loads(
        self, loads: Dict[str, float]
    ) -> List[SubscriptionLoad]:
        """Attribute each broker's load to its attached subscriptions.

        A broker's window load is split across its attached subscribers
        in proportion to their delivery-count deltas since the previous
        sample (uniformly when nobody received anything), then split
        equally across each subscriber's subscriptions.  Approximate by
        design: the strategies only need a consistent relative ranking
        of "how much would moving this subscription shift".
        """
        by_broker: Dict[str, List] = {}
        for client_id in sorted(self.network.subscribers):
            subscriber = self.network.subscribers[client_id]
            if subscriber.broker_id is None or subscriber.departed:
                continue
            if not subscriber.subscriptions:
                continue
            by_broker.setdefault(subscriber.broker_id, []).append(subscriber)
        result: List[SubscriptionLoad] = []
        for broker_id in sorted(by_broker):
            clients = by_broker[broker_id]
            load = loads.get(broker_id, 0.0)
            deltas = {
                client.client_id: max(
                    0,
                    client.delivered
                    - self._last_delivered.get(client.client_id, 0),
                )
                for client in clients
            }
            total = sum(deltas.values())
            for client in clients:
                if total > 0:
                    share = load * deltas[client.client_id] / total
                else:
                    share = load / len(clients)
                per_sub = share / len(client.subscriptions)
                for subscription in client.subscriptions:
                    result.append(
                        SubscriptionLoad(subscription.sub_id, broker_id, per_sub)
                    )
        for client_id in sorted(self.network.subscribers):
            subscriber = self.network.subscribers[client_id]
            self._last_delivered[client_id] = subscriber.delivered
        return result

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(self) -> Tuple[MigrationPlan, int, float]:
        """One online step: sample, plan, execute.

        Returns the plan plus the subscriptions actually moved and the
        summed detach gap (both may be less than planned when a move
        went stale — its subscriber churned away or its target broker
        crashed between planning and execution).
        """
        loads = self.observe_window()
        empty = MigrationPlan(strategy=self.spec.strategy, moves=())
        if not loads:
            return empty, 0, 0.0
        brokers = self.broker_loads()
        subscriptions = self.subscription_loads(loads)
        if not brokers or not subscriptions:
            return empty, 0, 0.0
        plan = self.planner.plan_migrations(brokers, subscriptions)
        moved, gap = self._execute(plan)
        self.steps_run += 1
        self.subscriptions_moved += moved
        self.migration_gap_s += gap
        return plan, moved, gap

    def _execute(self, plan: MigrationPlan) -> Tuple[int, float]:
        """Apply a plan at client granularity.

        Subscriptions live on clients; moving one means moving its
        whole subscriber (retract at the source, detach, a ``gap`` of
        virtual time in flight, re-attach at the target — the client
        re-issues every subscription on attach).  Stale moves are
        skipped, never retargeted: the next step replans from fresh
        samples anyway.
        """
        network = self.network
        active = set(network.active_brokers)
        movers: List[Tuple] = []
        taken = set()
        for move in plan:
            client_id = network.subscriber_for(move.sub_id)
            if client_id is None or client_id in taken:
                continue
            subscriber = network.subscribers.get(client_id)
            if subscriber is None or subscriber.departed:
                continue
            if subscriber.broker_id != move.source:
                continue
            if move.target not in active or network.broker_is_down(move.target):
                continue
            taken.add(client_id)
            movers.append((subscriber, move.target))
        if not movers:
            return 0, 0.0
        moved_subscriptions = 0
        with obs.span("cycle.migrate", moves=len(movers)):
            for subscriber, _target in movers:
                for subscription in list(subscriber.subscriptions):
                    network.client_send(
                        subscriber.client_id,
                        subscriber.broker_id,
                        Unsubscription(subscription.sub_id, subscriber.client_id),
                        CONTROL_MESSAGE_KB,
                    )
                network.brokers[subscriber.broker_id].detach_client(
                    subscriber.client_id
                )
                subscriber.detached()
                moved_subscriptions += len(subscriber.subscriptions)
            if self.spec.gap > 0:
                network.run(self.spec.gap)
            for subscriber, target in movers:
                network.brokers[target].attach_client(subscriber.client_id)
                subscriber.attached(network, target)
        gap_seconds = self.spec.gap * len(movers)
        network.metrics.on_migration(moved_subscriptions, gap_seconds)
        obs.add("online.migrations", moved_subscriptions)
        obs.add("online.migration_gap_s", gap_seconds)
        return moved_subscriptions, gap_seconds

    # ------------------------------------------------------------------
    # Drift vs the post-reconfiguration baseline
    # ------------------------------------------------------------------
    def drift(self) -> float:
        """Max relative deviation of predicted loads from the baseline."""
        return self.estimator.drift(self.baseline)

    def rebase(self) -> None:
        """Capture the current predictions as the new drift baseline."""
        self.baseline = self.estimator.predicted_loads()

    def pool_capacities(self) -> Dict[str, float]:
        """Output-bandwidth capacity per pool broker (a copy)."""
        return dict(self._capacity)


@dataclass(frozen=True)
class AutoscaleDecision:
    """One cycle's pool-sizing verdict from predicted load.

    ``target`` is the broker count that lands the estimator's total
    predicted output load at ``target_util`` of summed capacity,
    clamped to ``[min_brokers, pool_size]``; ``current`` is the
    allocation entering the cycle.
    """

    cycle: int
    current: int
    target: int
    predicted_load: float
    mean_capacity: float

    @property
    def delta(self) -> int:
        return self.target - self.current


class PoolAutoscaler:
    """Drift-gated pool sizing from the estimator's predicted load.

    The online drift gate answers "has the load *shape* moved?"; this
    hook answers "is the allocated broker set the right *size*?".  Each
    cycle it converts the estimator's total predicted output load into
    a target broker count (load / (target_util × mean capacity),
    rounded up).  A non-zero delta overrides the drift-gated skip so
    the full CROC run resizes the allocation; a zero delta leaves the
    skip decision to the drift gate.  Pure arithmetic over already
    sampled predictions — deterministic, and inert unless
    ``OnlineSpec.autoscale`` is set.
    """

    def __init__(
        self,
        scheduler: OnlineScheduler,
        spec: OnlineSpec,
        min_brokers: int = 1,
    ):
        if min_brokers < 1:
            raise ValueError(f"min_brokers must be >= 1, got {min_brokers}")
        self.scheduler = scheduler
        self.spec = spec
        self.min_brokers = min_brokers
        self.decisions: List[AutoscaleDecision] = []

    def decide(self, cycle: int, current: int) -> AutoscaleDecision:
        """Size the pool for the predicted load (records the decision)."""
        capacities = self.scheduler.pool_capacities()
        predicted = self.scheduler.estimator.predicted_loads()
        total_load = sum(
            max(predicted[broker_id], 0.0) for broker_id in sorted(predicted)
        )
        pool_size = len(capacities)
        mean_capacity = (
            sum(capacities.values()) / pool_size if pool_size else 0.0
        )
        usable = self.spec.target_util * mean_capacity
        if usable > EPSILON and total_load > EPSILON:
            need = math.ceil(total_load / usable)
        else:
            need = self.min_brokers
        target = max(self.min_brokers, min(need, pool_size or self.min_brokers))
        decision = AutoscaleDecision(
            cycle=cycle,
            current=current,
            target=target,
            predicted_load=total_load,
            mean_capacity=mean_capacity,
        )
        self.decisions.append(decision)
        return decision


class ContinuousReconfigurator:
    """Periodic CROC control loop.

    Parameters
    ----------
    croc:
        The coordinator to re-run each cycle.
    profiling_time / measurement_time:
        Virtual seconds per cycle spent re-filling bit vectors and
        measuring the reconfigured system.
    on_cycle_start:
        Optional hook, called with the cycle index before profiling —
        the drift driver (rate changes, churn) plugs in here.
    online:
        Optional :class:`OnlineSpec` enabling the mixed schedule:
        ``online.steps`` estimator-driven migration steps inside each
        profiling phase, and a drift-gated skip of the full CROC run.
        ``None`` (the default) reproduces the periodic-full-CROC loop
        bit for bit.
    planner:
        Optional override for the online planner (anything with
        ``plan_migrations(brokers, subscriptions)``); defaults to the
        core strategy named by ``online.strategy``.
    energy:
        Optional :class:`~repro.core.energy.EnergySpec` attaching an
        :class:`~repro.core.energy.EnergyAccountant` that integrates
        each cycle's measurement window (crash downtime and migration
        gaps included) into per-cycle joules.  Post-hoc arithmetic
        only — the loop's behavior is identical with it detached.
    """

    def __init__(
        self,
        croc: Croc,
        profiling_time: float = 60.0,
        measurement_time: float = 30.0,
        on_cycle_start: Optional[Callable[[int], None]] = None,
        online: Optional[OnlineSpec] = None,
        planner=None,
        energy: Optional[EnergySpec] = None,
    ):
        self.croc = croc
        self.profiling_time = profiling_time
        self.measurement_time = measurement_time
        self.on_cycle_start = on_cycle_start
        self.online = online
        self._planner = planner
        self._scheduler: Optional[OnlineScheduler] = None
        self.accountant = (
            EnergyAccountant(energy) if energy is not None else None
        )
        self.autoscaler: Optional[PoolAutoscaler] = None
        self.reports: List[CycleReport] = []

    @property
    def scheduler(self) -> Optional[OnlineScheduler]:
        """The live :class:`OnlineScheduler` (``None`` until first run)."""
        return self._scheduler

    def _scheduler_for(self, network: PubSubNetwork) -> Optional[OnlineScheduler]:
        if self.online is None:
            return None
        if self._scheduler is None or self._scheduler.network is not network:
            self._scheduler = OnlineScheduler(network, self.online, self._planner)
            self.autoscaler = (
                PoolAutoscaler(self._scheduler, self.online)
                if self.online.autoscale
                else None
            )
        return self._scheduler

    def run(self, network: PubSubNetwork, cycles: int) -> List[CycleReport]:
        """Execute ``cycles`` reconfiguration cycles on a live network."""
        pool = network.broker_pool()
        bandwidths = {spec.broker_id: spec.total_output_bandwidth for spec in pool}
        scheduler = self._scheduler_for(network)
        for cycle in range(cycles):
            if self.on_cycle_start is not None:
                self.on_cycle_start(cycle)
            with obs.span("cycle", index=cycle) as cycle_span:
                online_steps = 0
                moved = 0
                gap_s = 0.0
                drift_value = 0.0
                if scheduler is None:
                    with obs.span("cycle.profile"):
                        network.run(self.profiling_time)
                else:
                    # Mixed schedule: steps+1 equal slices; each of the
                    # first `steps` ends with an online migration step,
                    # and the final slice lets traffic settle so the
                    # CROC gather (if it runs) sees post-migration
                    # routing.
                    slice_time = self.profiling_time / (self.online.steps + 1)
                    for step in range(self.online.steps):
                        network.metrics.reset_window()
                        with obs.span("cycle.online_step", index=step):
                            network.run(slice_time)
                            _plan, step_moved, step_gap = scheduler.step()
                        online_steps += 1
                        moved += step_moved
                        gap_s += step_gap
                    network.metrics.reset_window()
                    with obs.span("cycle.profile"):
                        network.run(slice_time)
                    scheduler.observe_window()
                    drift_value = scheduler.drift()
                reconfigured = True
                skipped = ""
                subscriptions = 0
                degraded = False
                rolled_back = False
                autoscale_target = 0
                autoscale_delta = 0
                if self.autoscaler is not None:
                    decision = self.autoscaler.decide(
                        cycle, len(network.active_brokers)
                    )
                    autoscale_target = decision.target
                    autoscale_delta = decision.delta
                skip_full = (
                    scheduler is not None
                    and scheduler.baseline
                    and self.online.drift_threshold > 0
                    and drift_value <= self.online.drift_threshold
                    # A mis-sized pool forces the full run even when the
                    # load shape has not drifted: only a full CROC cycle
                    # can grow or shrink the allocated broker set.
                    and autoscale_delta == 0
                )
                if skip_full:
                    reconfigured = False
                    skipped = (
                        f"drift {drift_value:.4f} within threshold "
                        f"{self.online.drift_threshold}"
                    )
                else:
                    try:
                        report = self.croc.reconfigure(network)
                        subscriptions = report.gather.subscription_count
                        degraded = report.gather.degraded
                        if not report.applied:
                            # Aborted / rolled back mid-apply; the previous
                            # deployment keeps serving traffic.
                            reconfigured = False
                            rolled_back = True
                            skipped = report.rollback_reason
                        elif scheduler is not None:
                            # A fresh full allocation is the reference the
                            # next cycles drift against.
                            scheduler.rebase()
                    except ReconfigurationError as exc:
                        # Keep the current deployment; record why.
                        reconfigured = False
                        skipped = str(exc)
                network.metrics.reset_window()
                with obs.span("cycle.measure"):
                    network.run(self.measurement_time)
                summary = network.metrics.summary(
                    len(pool), network.active_brokers, bandwidths
                )
                cycle_span.set(reconfigured=reconfigured, rolled_back=rolled_back)
            joules = 0.0
            joules_per_delivery = 0.0
            if self.accountant is not None:
                energy_report = self.accountant.observe(summary.energy_usage())
                joules = energy_report.joules
                joules_per_delivery = energy_report.joules_per_delivery
            self.reports.append(
                CycleReport(
                    cycle=cycle,
                    virtual_time=network.sim.now,
                    allocated_brokers=len(network.active_brokers),
                    summary=summary,
                    subscriptions_profiled=subscriptions,
                    reconfigured=reconfigured,
                    skipped_reason=skipped,
                    degraded=degraded,
                    rolled_back=rolled_back,
                    online_steps=online_steps,
                    subscriptions_moved=moved,
                    migration_gap_s=gap_s,
                    drift=drift_value,
                    autoscale_target=autoscale_target,
                    autoscale_delta=autoscale_delta,
                    joules=joules,
                    joules_per_delivery=joules_per_delivery,
                )
            )
        return self.reports


class SubscriberChurn:
    """A drift driver that detaches and re-attaches subscribers.

    Each cycle, a random ``leave_fraction`` of the currently attached
    subscribers unsubscribe and detach, and a random subset of the
    previously departed rejoin at a random *active* broker with their
    original subscriptions.  The next CROC run then sees a genuinely
    different subscription pool — the churn scenario the paper's
    one-shot evaluation leaves open.
    """

    def __init__(self, network: PubSubNetwork, rng,
                 leave_fraction: float = 0.2, rejoin_fraction: float = 0.5):
        if not 0.0 <= leave_fraction <= 1.0:
            raise ValueError("leave_fraction must be within [0, 1]")
        if not 0.0 <= rejoin_fraction <= 1.0:
            raise ValueError("rejoin_fraction must be within [0, 1]")
        self._network = network
        self._rng = rng
        self.leave_fraction = leave_fraction
        self.rejoin_fraction = rejoin_fraction
        self._departed: List[str] = []
        self.left_total = 0
        self.rejoined_total = 0

    def __call__(self, cycle: int) -> None:
        network = self._network
        # Rejoin first so a cycle never empties the system.
        rejoining = [
            client_id
            for client_id in list(self._departed)
            if self._rng.random() < self.rejoin_fraction
        ]
        active = network.active_brokers
        for client_id in rejoining:
            self._departed.remove(client_id)
            subscriber = network.subscribers[client_id]
            broker_id = self._rng.choice(active)
            network.brokers[broker_id].attach_client(client_id)
            subscriber.attached(network, broker_id)
            self.rejoined_total += 1
        attached = [
            subscriber
            for subscriber in network.subscribers.values()
            if subscriber.broker_id is not None
        ]
        leavers = [
            subscriber
            for subscriber in attached
            if self._rng.random() < self.leave_fraction
        ]
        if len(leavers) >= len(attached):
            leavers = leavers[:-1]  # always keep at least one subscriber
        for subscriber in leavers:
            for subscription in list(subscriber.subscriptions):
                # Retract in the overlay but keep the subscription object
                # so the client can re-issue it when rejoining.
                network.client_send(
                    subscriber.client_id,
                    subscriber.broker_id,
                    Unsubscription(subscription.sub_id, subscriber.client_id),
                    CONTROL_MESSAGE_KB,
                )
            network.brokers[subscriber.broker_id].detach_client(
                subscriber.client_id
            )
            subscriber.detached()
            subscriber.departed = True
            self._departed.append(subscriber.client_id)
            self.left_total += 1


class RateDrift:
    """A drift driver that scales publisher rates each cycle.

    ``factors[i % len(factors)]`` multiplies every publisher's *base*
    rate in cycle ``i`` — e.g. ``(1.0, 2.0, 0.5)`` models a market-open
    burst followed by a quiet period.  Rates take effect at the next
    publication the client schedules.
    """

    def __init__(self, network: PubSubNetwork, factors=(1.0, 2.0, 0.5)):
        self._network = network
        self._factors = tuple(factors)
        self._base_rates = {
            client_id: publisher.rate
            for client_id, publisher in network.publishers.items()
        }

    def __call__(self, cycle: int) -> None:
        factor = self._factors[cycle % len(self._factors)]
        for client_id, publisher in self._network.publishers.items():
            publisher.rate = self._base_rates[client_id] * factor
