"""Formatting helpers for the benchmark tables and figure series."""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.obs.report import format_rows as format_rows  # historical public path


def reduction(baseline: float, value: float) -> float:
    """Fractional reduction of ``value`` relative to ``baseline``."""
    if baseline <= 0:
        return 0.0
    return 1.0 - value / baseline


def series(results: Iterable, x_key: str, y_key: str) -> List[Dict[str, object]]:
    """Extract an (x, y) figure series from experiment-result rows."""
    points: List[Dict[str, object]] = []
    for result in results:
        row = result.as_row() if hasattr(result, "as_row") else dict(result)
        points.append({x_key: row.get(x_key), y_key: row.get(y_key)})
    return points
