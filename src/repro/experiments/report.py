"""Formatting helpers for the benchmark tables and figure series."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def reduction(baseline: float, value: float) -> float:
    """Fractional reduction of ``value`` relative to ``baseline``."""
    if baseline <= 0:
        return 0.0
    return 1.0 - value / baseline


def format_rows(rows: Sequence[Mapping[str, object]],
                columns: Optional[Sequence[str]] = None) -> str:
    """Render dict rows as an aligned, pipe-separated text table.

    The benchmark harness prints these so the regenerated figures can
    be compared side-by-side with the paper's plots.
    """
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered: List[List[str]] = [[str(column) for column in columns]]
    for row in rows:
        rendered.append([_cell(row.get(column, "")) for column in columns])
    widths = [
        max(len(line[index]) for line in rendered) for index in range(len(columns))
    ]
    lines = []
    for line_index, line in enumerate(rendered):
        lines.append(
            " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(line))
        )
        if line_index == 0:
            lines.append("-+-".join("-" * width for width in widths))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def series(results: Iterable, x_key: str, y_key: str) -> List[Dict[str, object]]:
    """Extract an (x, y) figure series from experiment-result rows."""
    points: List[Dict[str, object]] = []
    for result in results:
        row = result.as_row() if hasattr(result, "as_row") else dict(result)
        points.append({x_key: row.get(x_key), y_key: row.get(y_key)})
    return points
