"""Formatting helpers for the benchmark tables and figure series."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.obs.export import SCHEMA_VERSION, validate_records
from repro.obs.report import format_rows as format_rows  # historical public path


def reduction(baseline: float, value: float) -> float:
    """Fractional reduction of ``value`` relative to ``baseline``."""
    if baseline <= 0:
        return 0.0
    return 1.0 - value / baseline


def series(results: Iterable, x_key: str, y_key: str) -> List[Dict[str, object]]:
    """Extract an (x, y) figure series from experiment-result rows."""
    points: List[Dict[str, object]] = []
    for result in results:
        row = result.as_row() if hasattr(result, "as_row") else dict(result)
        points.append({x_key: row.get(x_key), y_key: row.get(y_key)})
    return points


def summarize_pareto(records: Sequence[Dict[str, object]]) -> str:
    """The ``report pareto`` terminal summary for one energy export.

    Validates the export, then *recomputes* the non-dominated front
    from the ``energy`` records — the front is derived data, so a
    hand-edited export can never smuggle in a stale ranking.  Entirely
    deterministic; pinned by a golden-file test like ``report obs``.
    """
    # Imported here, not at module top: sweeps imports the runner stack,
    # and this module is also consumed by leaf-ish tooling that only
    # wants format_rows.
    from repro.experiments.sweeps import PARETO_OBJECTIVES, ParetoFront

    errors = validate_records(records)
    if errors:
        raise ValueError(
            "invalid observation export:\n" + "\n".join(errors)
        )
    energy_records = [
        record for record in records if record.get("record") == "energy"
    ]
    if not energy_records:
        raise ValueError("export has no energy records")
    front = ParetoFront.from_vectors([
        (
            str(record.get("cell", "")),
            str(record["scenario"]),
            str(record["approach"]),
            {key: float(record[key]) for key, _max in PARETO_OBJECTIVES},
        )
        for record in energy_records
    ])
    objectives = " ".join(
        f"{key}{'↑' if maximize else '↓'}"
        for key, maximize in front.objectives
    )
    lines = [
        f"pareto front — schema {SCHEMA_VERSION}, "
        f"{len(energy_records)} cell(s), objectives: {objectives}",
        "",
        format_rows(front.rows()),
        "",
        "energy detail:",
        format_rows([
            {
                "scenario": record["scenario"],
                "approach": record["approach"],
                "joules": record["joules"],
                "joules_per_delivery": record["joules_per_delivery"],
                "idle_joules": record["idle_joules"],
                "active_joules": record["active_joules"],
                "matching_joules": record["matching_joules"],
                "transmission_joules": record["transmission_joules"],
                "downtime_s": record["downtime_s"],
            }
            for record in energy_records
        ]),
    ]
    return "\n".join(lines) + "\n"
