"""Experiment pipeline for the monitoring workload domain.

The stock-quote :class:`~repro.experiments.runner.ExperimentRunner`
follows the paper's evaluation; this module provides the same
deploy → profile → reconfigure → measure pipeline for the
systems-monitoring domain (:mod:`repro.workloads.monitoring`), which
exists to demonstrate — and measure — the framework's language
independence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.baselines import manual_deployment
from repro.core.capacity import BrokerSpec, MatchingDelayFunction
from repro.core.cram import CramAllocator
from repro.core.croc import Croc
from repro.experiments.runner import SETTLE_TIME
from repro.pubsub.client import PublisherClient, SubscriberClient
from repro.pubsub.metrics import MetricsSummary
from repro.pubsub.network import PubSubNetwork
from repro.sim.rng import SeededRng
from repro.workloads.monitoring import (
    MetricFeed,
    build_hosts,
    metric_advertisement,
    monitoring_subscriptions,
)


@dataclass
class MonitoringScenario:
    """Configuration of one monitoring-domain experiment."""

    brokers: int = 16
    hosts: int = 12
    subscriptions: int = 120
    sample_rate: float = 2.0         # metric samples per second per host
    message_kb: float = 0.3
    broker_bandwidth_kbps: float = 40.0
    profile_capacity: int = 128
    measurement_time: float = 40.0

    @property
    def name(self) -> str:
        return f"monitoring-{self.hosts}hx{self.subscriptions}s"

    def profiling_time(self) -> float:
        return self.profile_capacity / self.sample_rate + 5.0


@dataclass
class MonitoringResult:
    """Before/after measurements of one monitoring experiment."""

    scenario: str
    baseline: MetricsSummary
    reconfigured: MetricsSummary
    allocated_brokers: int
    pool_size: int
    gif_reduction: float

    @property
    def message_rate_reduction(self) -> float:
        base = self.baseline.avg_broker_message_rate
        if base <= 0:
            return 0.0
        return 1.0 - self.reconfigured.avg_broker_message_rate / base

    @property
    def broker_reduction(self) -> float:
        if self.pool_size == 0:
            return 0.0
        return 1.0 - self.allocated_brokers / self.pool_size

    def as_row(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "allocated_brokers": self.allocated_brokers,
            "broker_reduction_pct": round(100 * self.broker_reduction, 1),
            "msg_rate_reduction_pct": round(100 * self.message_rate_reduction, 1),
            "mean_hop_count": round(self.reconfigured.mean_hop_count, 3),
            "gif_reduction_pct": round(100 * self.gif_reduction, 1),
        }


def run_monitoring_experiment(
    scenario: Optional[MonitoringScenario] = None,
    seed: int = 7,
    metric: str = "ios",
) -> MonitoringResult:
    """Full MANUAL → CRAM pipeline on the monitoring domain."""
    scenario = scenario if scenario is not None else MonitoringScenario()
    rng = SeededRng(seed, "monitoring", scenario.name)
    network = PubSubNetwork(profile_capacity=scenario.profile_capacity)
    for index in range(scenario.brokers):
        network.add_broker(BrokerSpec(
            broker_id=f"M{index:02d}",
            total_output_bandwidth=scenario.broker_bandwidth_kbps,
            delay_function=MatchingDelayFunction(base=1e-4, per_subscription=1e-6),
        ))
    hosts = build_hosts(scenario.hosts, rng)
    for host, role in hosts:
        network.register_publisher(PublisherClient(
            client_id=f"agent-{host}",
            advertisement=metric_advertisement(host, role),
            feed=MetricFeed(host, role, rng),
            rate=scenario.sample_rate,
            size_kb=scenario.message_kb,
        ))
    for subscription in monitoring_subscriptions(hosts, scenario.subscriptions, rng):
        network.register_subscriber(
            SubscriberClient(subscription.subscriber_id, [subscription])
        )
    deployment = manual_deployment(
        network.broker_pool(),
        [s.sub_id for sub in network.subscribers.values()
         for s in sub.subscriptions],
        [p.adv_id for p in network.publishers.values()],
        rng.child("manual"),
    )
    network.apply_deployment(deployment)
    network.run(scenario.profiling_time())

    pool = network.broker_pool()
    bandwidths = {s.broker_id: s.total_output_bandwidth for s in pool}
    network.metrics.reset_window()
    network.run(scenario.measurement_time)
    baseline = network.metrics.summary(len(pool), network.active_brokers, bandwidths)

    croc = Croc(allocator_factory=lambda: CramAllocator(metric=metric))
    croc.reconfigure(network, settle_time=SETTLE_TIME)
    stats = croc.last_allocator.last_stats
    network.metrics.reset_window()
    network.run(scenario.measurement_time)
    reconfigured = network.metrics.summary(
        len(pool), network.active_brokers, bandwidths
    )
    return MonitoringResult(
        scenario=scenario.name,
        baseline=baseline,
        reconfigured=reconfigured,
        allocated_brokers=len(network.active_brokers),
        pool_size=len(pool),
        gif_reduction=stats.gif_reduction,
    )
