"""End-to-end experiment execution (paper §VI).

Every experiment follows the paper's shape:

1. deploy the scenario on the MANUAL baseline topology (the initial
   overlay for *all* evaluations);
2. run a profiling period so the CBCs fill their bit vectors;
3. measure the MANUAL steady state (the comparison baseline);
4. apply the approach under test — a no-op for MANUAL, a random
   redeployment for AUTOMATIC, cluster-then-place for the PAIRWISE
   derivatives, or the full CROC pipeline for FBF / BIN PACKING /
   CRAM-*;
5. measure the steady state of the reconfigured system.

The ten approaches of the paper's evaluation are exposed under the
names in :data:`APPROACHES`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core import allocators
from repro.core.baselines import automatic_deployment, manual_deployment
from repro.core.binpacking import BinPackingAllocator
from repro.core.capacity import BrokerSpec
from repro.core.config import RunConfig
from repro.core.cram import CramAllocator, CramStats
from repro.core.croc import Croc, GatherResult
from repro.core.deployment import Deployment
from repro.core.energy import EnergyReport, account_window
from repro.core.grape import GrapeRelocator
from repro.core.overlay_builder import OverlayBuilder
from repro.core.pairwise import PairwiseKAllocator, PairwiseNAllocator
from repro.core.units import units_from_records
from repro.experiments.continuous import ContinuousReconfigurator, CycleReport
from repro.obs import collect as obs_collect
from repro.obs import recorder as obs
from repro.obs.timeline import TimelineSampler
from repro.pubsub.client import PublisherClient, SubscriberClient
from repro.pubsub.metrics import MetricsSummary
from repro.pubsub.network import PubSubNetwork
from repro.sim.engine import make_simulator
from repro.sim.faults import FaultPlan
from repro.sim.rng import SeededRng
from repro.workloads.scenarios import Scenario
from repro.workloads.stocks import StockQuoteFeed, stock_advertisement
from repro.workloads.subscriptions import subscription_workload

#: Approaches that bypass CROC's Phase-2 allocators: the paper's two
#: baselines and the two related-work PAIRWISE derivatives.
BASE_APPROACHES: Tuple[str, ...] = (
    "manual",
    "automatic",
    "pairwise-k",
    "pairwise-n",
)

#: The paper's ten evaluated approaches: two baselines, two related
#: derivatives, plus every allocator in the registry at import time
#: (two sorting allocators, four CRAM closeness metrics).  This is a
#: snapshot — use :func:`available_approaches` for the live set
#: including allocators registered after import.
APPROACHES: Tuple[str, ...] = BASE_APPROACHES + allocators.registered_names()


def available_approaches() -> Tuple[str, ...]:
    """The currently runnable approaches: baselines + live registry."""
    return BASE_APPROACHES + allocators.registered_names()

#: Virtual seconds allowed for control traffic to quiesce after a
#: reconfiguration, before the measurement window opens.
SETTLE_TIME = 3.0


@dataclass
class ExperimentResult:
    """One (scenario, approach) measurement."""

    approach: str
    scenario: str
    pool_size: int
    allocated_brokers: int
    summary: MetricsSummary
    baseline_summary: MetricsSummary
    computation_seconds: float
    total_subscriptions: int
    cram_stats: Optional[CramStats] = None
    extra: Dict[str, float] = field(default_factory=dict)
    #: ``Recorder.snapshot()`` of the run, when observability was on.
    #: Deliberately excluded from :meth:`as_row` — span wall times are
    #: wall-clock measurements, and the bit-identity contract compares
    #: rows.
    obs: Optional[Dict[str, object]] = None
    #: Post-hoc energy accounting (``RunConfig.energy``).  Also
    #: excluded from :meth:`as_row`: attaching the model must leave
    #: every pre-existing output byte-identical, so energy gets its own
    #: :meth:`energy_row` surface.
    energy: Optional[EnergyReport] = None

    @property
    def message_rate_reduction(self) -> float:
        """Fractional reduction of avg broker message rate vs MANUAL."""
        base = self.baseline_summary.avg_broker_message_rate
        if base <= 0:
            return 0.0
        return 1.0 - self.summary.avg_broker_message_rate / base

    @property
    def broker_reduction(self) -> float:
        """Fractional reduction of allocated brokers vs the full pool."""
        if self.pool_size == 0:
            return 0.0
        return 1.0 - self.allocated_brokers / self.pool_size

    def as_row(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "approach": self.approach,
            "subscriptions": self.total_subscriptions,
            "allocated_brokers": self.allocated_brokers,
            "msg_rate_reduction_pct": round(100.0 * self.message_rate_reduction, 1),
            "broker_reduction_pct": round(100.0 * self.broker_reduction, 1),
            "computation_s": round(self.computation_seconds, 4),
        }
        row.update(self.summary.as_row())
        return row

    def energy_row(self) -> Dict[str, object]:
        """Flat energy dict (raises when accounting was not attached)."""
        if self.energy is None:
            raise ValueError(
                f"{self.scenario}/{self.approach}: no energy accounting "
                "attached (set RunConfig.energy / --energy)"
            )
        row: Dict[str, object] = {
            "approach": self.approach,
            "subscriptions": self.total_subscriptions,
        }
        row.update(self.energy.as_row())
        row["mean_delivery_delay_ms"] = round(
            self.energy.mean_delay_s * 1000.0, 4
        )
        row["delivery_rate"] = round(self.energy.delivery_rate, 4)
        return row


class ExperimentRunner:
    """Builds, profiles, reconfigures, and measures one scenario.

    Parameters
    ----------
    scenario:
        A :class:`~repro.workloads.scenarios.Scenario`.
    seed:
        Master seed; every random decision in the experiment derives
        from it.
    cram_failure_budget:
        Cap on failed CRAM clustering attempts.  The paper runs CRAM to
        exhaustion; the cap only matters for CRAM-XOR, whose
        non-prunable metric otherwise probes every disjoint GIF pair.
        ``None`` reproduces the paper exactly.
    fault_plan:
        Optional :class:`~repro.sim.faults.FaultPlan` installed on the
        network before the workload starts.  ``None`` (and an empty
        plan) leaves every run bit-identical to the fault-free code
        path.
    config:
        A :class:`~repro.core.config.RunConfig` with the performance
        and online-reallocation knobs.  The default (all fields
        ``None``) defers every toggle to its environment variable, so
        omitting it is bit-identical to the pre-config behavior.
    """

    def __init__(
        self,
        scenario: Scenario,
        seed: int = 0,
        cram_failure_budget: Optional[int] = 400,
        grape: Optional[GrapeRelocator] = None,
        fault_plan: Optional[FaultPlan] = None,
        config: Optional[RunConfig] = None,
    ):
        self.scenario = scenario
        self.seed = seed
        self.cram_failure_budget = cram_failure_budget
        self.grape = grape if grape is not None else GrapeRelocator(objective="load")
        self.fault_plan = fault_plan
        self.config = config if config is not None else RunConfig()
        self._rng = SeededRng(seed, "experiment", scenario.name)
        self.network: Optional[PubSubNetwork] = None
        self.last_gather: Optional[GatherResult] = None
        self.last_continuous: Optional[ContinuousReconfigurator] = None

    # ------------------------------------------------------------------
    # Scenario deployment
    # ------------------------------------------------------------------
    def _build_network(self) -> PubSubNetwork:
        scenario = self.scenario
        network = PubSubNetwork(
            sim=make_simulator(self.config.engine),
            profile_capacity=scenario.profile_capacity,
            enable_covering=scenario.enable_covering,
        )
        specs = scenario.broker_specs()
        for spec in specs:
            network.add_broker(spec)
        if self.fault_plan is not None:
            network.install_faults(self.fault_plan, seed=self.seed)
        feeds = {
            symbol: StockQuoteFeed(symbol, self._rng)
            for symbol in scenario.symbols
        }
        price_hints = {symbol: feed.price for symbol, feed in feeds.items()}
        workload = subscription_workload(
            scenario.symbols,
            scenario.subscription_counts,
            self._rng,
            price_hints=price_hints,
            threshold_buckets=scenario.threshold_buckets,
        )
        for symbol in scenario.symbols:
            advertisement = stock_advertisement(symbol)
            publisher = PublisherClient(
                client_id=f"pub-{symbol}",
                advertisement=advertisement,
                feed=feeds[symbol],
                rate=scenario.publication_rate,
                size_kb=scenario.message_kb,
            )
            network.register_publisher(publisher)
            for subscription in workload[symbol]:
                subscriber = SubscriberClient(
                    client_id=subscription.subscriber_id,
                    subscriptions=[subscription],
                )
                network.register_subscriber(subscriber)
        return network

    def _all_subscription_ids(self, network: PubSubNetwork) -> List[str]:
        return [
            subscription.sub_id
            for subscriber in network.subscribers.values()
            for subscription in subscriber.subscriptions
        ]

    def _all_adv_ids(self, network: PubSubNetwork) -> List[str]:
        return [publisher.adv_id for publisher in network.publishers.values()]

    def _deploy_manual(self, network: PubSubNetwork) -> Deployment:
        deployment = manual_deployment(
            network.broker_pool(),
            self._all_subscription_ids(network),
            self._all_adv_ids(network),
            self._rng.child("manual"),
            heterogeneous=self.scenario.heterogeneous,
        )
        network.apply_deployment(deployment)
        return deployment

    # ------------------------------------------------------------------
    # Approach factories
    # ------------------------------------------------------------------
    def _allocator_factory(self, approach: str):
        """Resolve a registry allocator with this experiment's knobs.

        Every registered builder receives the same knob set and picks
        what it understands; the derived RNG child is keyed by the
        approach name so streams stay independent per allocator.
        """
        if not allocators.is_registered(approach):
            raise ValueError(f"no allocator for approach {approach!r}")
        return allocators.get(
            approach,
            rng=self._rng.child(approach),
            failure_budget=self.cram_failure_budget,
            **self.config.allocator_knobs(),
        )

    def croc_for(self, approach: str, overlay_builder: Optional[OverlayBuilder] = None) -> Croc:
        factory = self._allocator_factory(approach)
        return Croc(
            allocator_factory=factory,
            grape=self.grape,
            overlay_builder=overlay_builder,
            approach=approach,
        )

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def run(self, approach: str,
            overlay_builder: Optional[OverlayBuilder] = None) -> ExperimentResult:
        """Execute the full pipeline for one approach."""
        known = available_approaches()
        if approach not in known:
            raise ValueError(f"unknown approach {approach!r}; pick from {known}")
        scenario = self.scenario
        network = self._build_network()
        self.network = network
        recorder = obs.active()
        if recorder is not None:
            # Virtual timestamps come from this network's engine; the
            # sampler chunks ``network.run`` so timelines get sampled
            # without touching the event order.
            recorder.use_clock(lambda: network.sim.now)
            network.obs_sampler = TimelineSampler(network, recorder)
        self._deploy_manual(network)
        network.run(scenario.derived_profiling_time())
        network.metrics.reset_window()
        network.run(scenario.measurement_time)
        pool = network.broker_pool()
        bandwidths = {spec.broker_id: spec.total_output_bandwidth for spec in pool}
        baseline = network.metrics.summary(len(pool), network.active_brokers, bandwidths)

        cram_stats: Optional[CramStats] = None
        computation = 0.0
        extra: Dict[str, float] = {}
        if approach == "manual":
            summary = baseline
            allocated = len(pool)
        elif approach == "automatic":
            deployment = automatic_deployment(
                pool,
                self._all_subscription_ids(network),
                self._all_adv_ids(network),
                self._rng.child("automatic"),
            )
            network.apply_deployment(deployment)
            summary = self._measure(network, pool, bandwidths)
            allocated = len(pool)
        elif approach in ("pairwise-k", "pairwise-n"):
            summary, allocated, computation = self._run_pairwise(
                approach, network, pool, bandwidths
            )
        else:
            croc = self.croc_for(approach, overlay_builder)
            report = croc.reconfigure(network, settle_time=SETTLE_TIME)
            self.last_gather = report.gather
            computation = report.computation_seconds
            # A rolled-back reconfiguration leaves the previous overlay
            # running; count the brokers actually serving traffic.
            allocated = (
                report.allocated_brokers
                if report.applied
                else len(network.active_brokers)
            )
            summary = self._measure(network, pool, bandwidths)
            extra["phase2_brokers"] = report.allocation.broker_count
            if approach.startswith("cram-"):
                cram_stats = getattr(croc.last_allocator, "last_stats", None)

        obs_collect.add_network(network)
        energy: Optional[EnergyReport] = None
        if self.config.energy is not None:
            # Post-hoc arithmetic over the already-built summary; the
            # simulator is never touched, so every non-energy output is
            # byte-identical with the model detached (pinned by
            # tests/test_energy_equivalence.py).
            energy = account_window(self.config.energy, summary.energy_usage())
        return ExperimentResult(
            approach=approach,
            scenario=scenario.name,
            pool_size=len(pool),
            allocated_brokers=allocated,
            summary=summary,
            baseline_summary=baseline,
            computation_seconds=computation,
            total_subscriptions=scenario.total_subscriptions,
            cram_stats=cram_stats,
            extra=extra,
            energy=energy,
        )

    def _measure(
        self,
        network: PubSubNetwork,
        pool: List[BrokerSpec],
        bandwidths: Dict[str, float],
    ) -> MetricsSummary:
        network.run(SETTLE_TIME)
        network.metrics.reset_window()
        network.run(self.scenario.measurement_time)
        return network.metrics.summary(len(pool), network.active_brokers, bandwidths)

    # ------------------------------------------------------------------
    # Continuous operation (periodic / mixed schedule)
    # ------------------------------------------------------------------
    def run_continuous(
        self,
        approach: str,
        cycles: int,
        profiling_time: float = 60.0,
        measurement_time: float = 30.0,
        make_driver=None,
    ) -> List[CycleReport]:
        """Run the continuous control loop for a registry allocator.

        Deploys the MANUAL baseline, then executes ``cycles`` cycles of
        :class:`~repro.experiments.continuous.ContinuousReconfigurator`.
        When ``self.config.online`` is set the loop runs the mixed
        schedule; approaches declaring the ``incremental`` capability
        supply their own migration planner (the allocator instance),
        others fall back to the core strategy named in the spec.

        ``make_driver`` (optional) receives the freshly built network
        and returns the per-cycle drift hook — e.g.
        ``lambda net: SubscriberChurn(net, rng)``.
        """
        if not allocators.is_registered(approach):
            raise ValueError(
                f"continuous operation needs a registry allocator; "
                f"{approach!r} is not one of {allocators.registered_names()}"
            )
        network = self._build_network()
        self.network = network
        recorder = obs.active()
        if recorder is not None:
            recorder.use_clock(lambda: network.sim.now)
            network.obs_sampler = TimelineSampler(network, recorder)
        self._deploy_manual(network)
        online = self.config.online
        planner = None
        if online is not None and allocators.supports(approach, "incremental"):
            planner = self._allocator_factory(approach)()
        loop = ContinuousReconfigurator(
            self.croc_for(approach),
            profiling_time=profiling_time,
            measurement_time=measurement_time,
            on_cycle_start=make_driver(network) if make_driver else None,
            online=online,
            planner=planner,
            energy=self.config.energy,
        )
        self.last_continuous = loop
        reports = loop.run(network, cycles)
        obs_collect.add_network(network)
        return reports

    # ------------------------------------------------------------------
    # PAIRWISE derivatives
    # ------------------------------------------------------------------
    def _run_pairwise(
        self,
        approach: str,
        network: PubSubNetwork,
        pool: List[BrokerSpec],
        bandwidths: Dict[str, float],
    ) -> Tuple[MetricsSummary, int, float]:
        gather_croc = Croc(allocator_factory=BinPackingAllocator, approach="gather")
        gathered = gather_croc.gather(network)
        self.last_gather = gathered
        units = units_from_records(gathered.records, gathered.directory)
        started = time.perf_counter()
        if approach == "pairwise-k":
            # K = the cluster count CRAM computes with the XOR metric.
            cram = CramAllocator(metric="xor", failure_budget=self.cram_failure_budget)
            cram_result = cram.allocate(units, gathered.broker_pool, gathered.directory)
            k = max(1, cram.last_stats.final_units) if cram_result.success else len(pool)
            allocator = PairwiseKAllocator(
                cluster_count=k, rng=self._rng.child("pairwise-k")
            )
        else:
            allocator = PairwiseNAllocator(rng=self._rng.child("pairwise-n"))
        allocation = allocator.allocate(units, gathered.broker_pool, gathered.directory)
        computation = time.perf_counter() - started
        deployment = automatic_deployment(
            pool,
            [],  # subscription placement comes from the clustering below
            self._all_adv_ids(network),
            self._rng.child(approach),
        )
        deployment.subscription_placement = allocation.subscription_placement()
        deployment.approach = approach
        network.apply_deployment(deployment)
        summary = self._measure(network, pool, bandwidths)
        return summary, len(pool), computation
