"""``python -m repro`` — experiment driver entry point."""

from repro.experiments.cli import main

raise SystemExit(main())
