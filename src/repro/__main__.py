"""``python -m repro`` — experiment driver entry point."""

from __future__ import annotations

from repro.experiments.cli import main

raise SystemExit(main())
