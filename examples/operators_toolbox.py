#!/usr/bin/env python3
"""The operator's toolbox: trace, visualize, audit, archive.

Beyond the headline algorithms, running a reconfigurable
publish/subscribe system needs day-2 tooling.  This example strings the
library's operational features together on one small deployment:

* trace a single publication hop-by-hop through the overlay;
* render the broker tree CROC built, with loads and publishers;
* validate the plan against the profiles before trusting it;
* archive the deployment as JSON and load it back.

Run:  python examples/operators_toolbox.py
"""

import io

from repro.core.cram import CramAllocator
from repro.core.croc import Croc
from repro.core.plan_io import load_deployment, save_deployment
from repro.core.validation import validate_deployment
from repro.experiments.runner import ExperimentRunner
from repro.experiments.visualize import render_broker_loads, render_deployment
from repro.pubsub.tracing import MessageTracer
from repro.workloads import scenarios


def main() -> None:
    scenario = scenarios.cluster_homogeneous(
        subscriptions_per_publisher=16,
        scale=0.15,
        broker_bandwidth_kbps=14.0,  # spread the tree over several brokers
        measurement_time=20.0,
    )
    runner = ExperimentRunner(scenario, seed=31)
    network = runner._build_network()
    runner._deploy_manual(network)
    network.run(scenario.derived_profiling_time())

    croc = Croc(allocator_factory=lambda: CramAllocator(metric="ios"))
    report = croc.reconfigure(network)

    # ----- audit the plan -------------------------------------------------
    specs = {spec.broker_id: spec for spec in report.gather.broker_pool}
    validation = validate_deployment(
        report.deployment, report.gather.records, report.gather.directory, specs
    )
    verdict = "OK" if validation.ok else f"{len(validation.violations)} violations"
    print(f"plan validation: {verdict}")

    # ----- visualize the overlay ------------------------------------------
    print()
    print(render_deployment(report.deployment, report.gather.directory))

    # ----- trace one publication ------------------------------------------
    symbol = scenario.symbols[0]
    adv_id = f"adv-{symbol}"
    tracer = MessageTracer(adv_ids={adv_id})
    network.tracer = tracer
    network.run(3.0)
    network.tracer = None
    message_id = max(
        (event.message_id for event in tracer.events), default=None
    )
    if message_id is not None:
        print(f"\njourney of {adv_id}#{message_id}:")
        print(tracer.render_route(adv_id, message_id))
        print(f"brokers visited: {tracer.brokers_visited(adv_id, message_id)}")
        print(f"deliveries:      {tracer.delivery_count(adv_id, message_id)}")

    # ----- measure and show per-broker load --------------------------------
    network.metrics.reset_window()
    network.run(scenario.measurement_time)
    pool = network.broker_pool()
    summary = network.metrics.summary(
        len(pool), network.active_brokers,
        {s.broker_id: s.total_output_bandwidth for s in pool},
    )
    active_rates = {
        broker: rate
        for broker, rate in summary.per_broker_rates.items()
        if broker in network.active_brokers
    }
    print("\nper-broker message rates:")
    print(render_broker_loads(active_rates))

    # ----- archive and restore the plan ------------------------------------
    buffer = io.StringIO()
    save_deployment(report.deployment, buffer)
    print(f"\narchived plan: {len(buffer.getvalue())} bytes of JSON")
    buffer.seek(0)
    restored = load_deployment(buffer)
    assert sorted(restored.tree.edges()) == sorted(report.deployment.tree.edges())
    print("restored plan matches the live deployment.")


if __name__ == "__main__":
    main()
