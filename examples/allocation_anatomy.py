#!/usr/bin/env python3
"""Anatomy of the three phases, driven through the public API directly.

Rather than going through the experiment runner, this example drives
CROC's machinery by hand on a live overlay:

  Phase 1 — flood a BIR, inspect the bit-vector profiles that come back;
  Phase 2 — run CRAM step by step and look at the GIFs and clusters;
  Phase 3 — build the tree, print it, and watch GRAPE pick publisher
            attachment points.

Run:  python examples/allocation_anatomy.py
"""

from repro.core.binpacking import BinPackingAllocator
from repro.core.cram import CramAllocator
from repro.core.croc import Croc
from repro.core.gif import build_gifs, gif_reduction_ratio
from repro.core.grape import GrapeRelocator
from repro.core.overlay_builder import OverlayBuilder
from repro.core.units import units_from_records
from repro.experiments.runner import ExperimentRunner
from repro.workloads import scenarios


def print_tree(tree, broker, prefix=""):
    units = tree.broker_units.get(broker, [])
    real = sum(unit.subscription_count for unit in units if unit.kind == "subscription")
    label = f"{broker}  ({real} subscriptions)" if real else broker
    print(f"{prefix}{label}")
    kids = tree.children(broker)
    for index, child in enumerate(kids):
        last = index == len(kids) - 1
        print_tree(tree, child, prefix + ("  " if prefix == "" else "   "))


def main() -> None:
    scenario = scenarios.cluster_homogeneous(
        subscriptions_per_publisher=16, scale=0.15, measurement_time=10.0
    )
    runner = ExperimentRunner(scenario, seed=21)

    # Deploy MANUAL and let the CBCs profile the workload.
    network = runner._build_network()
    runner._deploy_manual(network)
    network.run(scenario.derived_profiling_time())

    # ----- Phase 1: information gathering --------------------------------
    croc = Croc(allocator_factory=lambda: CramAllocator(metric="ios"),
                grape=GrapeRelocator(objective="load"))
    gathered = croc.gather(network)
    print(f"Phase 1: {len(gathered.broker_pool)} BIA reports, "
          f"{gathered.subscription_count} subscription profiles, "
          f"{len(gathered.directory)} publishers")
    sample = gathered.records[0]
    adv_id = next(iter(sample.profile.adv_ids()))
    vector = sample.profile.vector(adv_id)
    print(f"  e.g. {sample.sub_id}: bit vector for {adv_id} has "
          f"{vector.cardinality}/{vector.capacity} bits set "
          f"(first_id={vector.first_id})")

    # ----- Phase 2: subscription allocation ------------------------------
    units = units_from_records(gathered.records, gathered.directory)
    gifs = build_gifs(units)
    print(f"\nPhase 2: {len(units)} units → {len(gifs)} GIFs "
          f"({100 * gif_reduction_ratio(len(units), len(gifs)):.0f}% reduction)")
    cram = CramAllocator(metric="ios")
    allocation = cram.allocate(units, gathered.broker_pool, gathered.directory)
    stats = cram.last_stats
    print(f"  CRAM: {stats.iterations} iterations, {stats.merges} merges, "
          f"{stats.failures} failed attempts, "
          f"{stats.closeness_evaluations} closeness evaluations")
    print(f"  allocated brokers: {allocation.broker_count} "
          f"(mean utilization {allocation.mean_utilization():.2f})")
    baseline = BinPackingAllocator().allocate(
        units, gathered.broker_pool, gathered.directory
    )
    print(f"  plain BIN PACKING for comparison: {baseline.broker_count} brokers")

    # ----- Phase 3: overlay construction + GRAPE --------------------------
    builder = OverlayBuilder(lambda: CramAllocator(metric="ios"))
    tree = builder.build(allocation, gathered.broker_pool, gathered.directory)
    print(f"\nPhase 3: tree of {len(tree)} brokers, height {tree.height()}")
    print(f"  optimizations: {builder.last_stats.pure_forwarders_eliminated} pure "
          f"forwarders removed, {builder.last_stats.children_taken_over} children "
          f"taken over, {builder.last_stats.best_fit_replacements} best-fit swaps")
    print_tree(tree, tree.root)

    grape = GrapeRelocator(objective="load")
    print("\nGRAPE placements:")
    for adv_id, publisher in sorted(gathered.directory.items()):
        decision = grape.place_one(tree, adv_id, publisher)
        print(f"  {adv_id:12s} → {decision.broker_id}  "
              f"(load score {decision.load_score:.2f} msg/s)")


if __name__ == "__main__":
    main()
