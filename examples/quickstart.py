#!/usr/bin/env python3
"""Quickstart: consolidate a publish/subscribe deployment with CRAM.

Builds a small homogeneous broker cluster on the MANUAL baseline
topology, lets the system run so the per-broker CBCs fill their bit
vector profiles, then has CROC reconfigure everything with the CRAM
allocator — and prints the before/after numbers the paper optimizes:
average broker message rate, allocated brokers, hop count.

Run:  python examples/quickstart.py
"""

from repro import ExperimentRunner, scenarios
from repro.experiments.report import format_rows


def main() -> None:
    # A 1/4-scale version of the paper's homogeneous cluster scenario:
    # 20 brokers, 10 stock publishers at 70 msg/min, 25 subscriptions
    # per publisher (40% symbol templates, 60% with an extra inequality
    # predicate, exactly as in the paper's workload).
    scenario = scenarios.cluster_homogeneous(
        subscriptions_per_publisher=25,
        scale=0.25,
        measurement_time=45.0,
    )
    print(f"scenario: {scenario.name}")
    print(f"  brokers={scenario.broker_count}  publishers={scenario.publishers}  "
          f"subscriptions={scenario.total_subscriptions}")

    rows = []
    for approach in ("manual", "cram-ios"):
        runner = ExperimentRunner(scenario, seed=42)
        result = runner.run(approach)
        rows.append(result.as_row())
        if approach == "cram-ios" and result.cram_stats is not None:
            stats = result.cram_stats
            print(
                f"\nCRAM internals: {stats.initial_units} subscriptions → "
                f"{stats.initial_gifs} GIFs "
                f"({100 * stats.gif_reduction:.0f}% reduction) → "
                f"{stats.final_units} clusters after {stats.merges} merges"
            )

    print()
    print(format_rows(rows, columns=[
        "approach", "allocated_brokers", "avg_broker_message_rate",
        "msg_rate_reduction_pct", "broker_reduction_pct", "mean_hop_count",
    ]))
    cram = rows[-1]
    print(
        f"\nCRAM kept {cram['allocated_brokers']} of {scenario.broker_count} "
        f"brokers powered on and cut the average broker message rate by "
        f"{cram['msg_rate_reduction_pct']}%."
    )


if __name__ == "__main__":
    main()
