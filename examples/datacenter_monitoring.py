#!/usr/bin/env python3
"""Language independence: the framework on a monitoring workload.

The paper's framework clusters on *bit vectors*, never on the
subscription language, so it must work unchanged on any workload.
This example swaps the stock-quote domain for a data-center
monitoring feed — host agents publishing metric samples, operators
subscribing to dashboards, rollups, threshold alerts, and severity
filters — and runs the exact same CROC pipeline on it.

Run:  python examples/datacenter_monitoring.py
"""

from repro.core.capacity import BrokerSpec, MatchingDelayFunction
from repro.core.cram import CramAllocator
from repro.core.croc import Croc
from repro.core.baselines import manual_deployment
from repro.pubsub.client import PublisherClient, SubscriberClient
from repro.pubsub.network import PubSubNetwork
from repro.sim.rng import SeededRng
from repro.workloads.monitoring import (
    MetricFeed,
    build_hosts,
    metric_advertisement,
    monitoring_subscriptions,
)

BROKERS = 16
HOSTS = 12
SUBSCRIPTIONS = 120
SAMPLE_RATE = 2.0  # metric samples per second per host
MEASURE = 40.0


def main() -> None:
    rng = SeededRng(7, "monitoring-example")
    network = PubSubNetwork(profile_capacity=128)
    for index in range(BROKERS):
        network.add_broker(BrokerSpec(
            broker_id=f"M{index:02d}",
            total_output_bandwidth=40.0,
            delay_function=MatchingDelayFunction(base=1e-4, per_subscription=1e-6),
        ))

    hosts = build_hosts(HOSTS, rng)
    for host, role in hosts:
        network.register_publisher(PublisherClient(
            client_id=f"agent-{host}",
            advertisement=metric_advertisement(host, role),
            feed=MetricFeed(host, role, rng),
            rate=SAMPLE_RATE,
            size_kb=0.3,
        ))
    for subscription in monitoring_subscriptions(hosts, SUBSCRIPTIONS, rng):
        network.register_subscriber(
            SubscriberClient(subscription.subscriber_id, [subscription])
        )

    deployment = manual_deployment(
        network.broker_pool(),
        [s.sub_id for sub in network.subscribers.values()
         for s in sub.subscriptions],
        [p.adv_id for p in network.publishers.values()],
        rng.child("manual"),
    )
    network.apply_deployment(deployment)

    profiling = network.profile_capacity / SAMPLE_RATE + 5.0
    network.run(profiling)
    network.metrics.reset_window()
    network.run(MEASURE)
    pool = network.broker_pool()
    bandwidths = {s.broker_id: s.total_output_bandwidth for s in pool}
    before = network.metrics.summary(len(pool), network.active_brokers, bandwidths)
    print(f"MANUAL:   {before.active_brokers} brokers, "
          f"{before.avg_broker_message_rate:.2f} msg/s avg broker rate, "
          f"{before.mean_hop_count:.2f} hops")

    croc = Croc(allocator_factory=lambda: CramAllocator(metric="ios"))
    report = croc.reconfigure(network)
    stats = croc.last_allocator.last_stats
    print(f"CRAM saw {stats.initial_units} subscriptions → "
          f"{stats.initial_gifs} GIFs → {stats.final_units} clusters "
          f"({stats.merges} merges) — no stock-specific code involved")

    network.metrics.reset_window()
    network.run(MEASURE)
    after = network.metrics.summary(len(pool), network.active_brokers, bandwidths)
    print(f"CRAM-IOS: {after.active_brokers} brokers, "
          f"{after.avg_broker_message_rate:.2f} msg/s avg broker rate, "
          f"{after.mean_hop_count:.2f} hops")
    reduction = 1 - after.avg_broker_message_rate / before.avg_broker_message_rate
    print(f"\nSame pipeline, different language and distribution: "
          f"{100 * reduction:.1f}% message-rate reduction, "
          f"{before.active_brokers} → {after.active_brokers} brokers.")


if __name__ == "__main__":
    main()
