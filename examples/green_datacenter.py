#!/usr/bin/env python3
"""Green consolidation in a heterogeneous data center.

The paper's heterogeneous scenario: three broker tiers (100% / 50% /
25% of full network capacity, throttled by the per-broker bandwidth
limiter) and a skewed subscription population (publisher i serves a
decreasing share of subscribers).  This example compares every
approach class on the same workload and prints the figure-style table:
who deallocates brokers, who overloads them, and what it costs in
delivery hops.

Run:  python examples/green_datacenter.py  [--full]
"""

import sys

from repro import ExperimentRunner, scenarios
from repro.experiments.report import format_rows

APPROACHES = ("manual", "automatic", "pairwise-n", "binpacking", "fbf", "cram-ios")


def main() -> None:
    scale = 0.5 if "--full" in sys.argv else 0.15
    scenario = scenarios.cluster_heterogeneous(
        ns=30,
        scale=scale,
        measurement_time=40.0,
    )
    specs = scenario.broker_specs()
    tiers = sorted({spec.total_output_bandwidth for spec in specs}, reverse=True)
    print(f"scenario: {scenario.name}")
    print(f"  broker tiers (kB/s): {tiers}")
    print(f"  subscriptions per publisher: {list(scenario.subscription_counts)}")
    print()

    rows = []
    for approach in APPROACHES:
        runner = ExperimentRunner(scenario, seed=7)
        result = runner.run(approach)
        row = result.as_row()
        row["mean_utilization"] = result.summary.mean_utilization
        rows.append(row)
        print(f"  ran {approach:12s} → {result.allocated_brokers} brokers")

    print()
    print(format_rows(rows, columns=[
        "approach", "allocated_brokers", "broker_reduction_pct",
        "avg_broker_message_rate", "msg_rate_reduction_pct",
        "mean_hop_count", "mean_delivery_delay_ms", "mean_utilization",
    ]))
    print(
        "\nReading the table: the capacity-aware approaches (binpacking, fbf,"
        "\ncram-*) deallocate most of the data center while the baselines keep"
        "\nevery broker powered; CRAM additionally clusters subscriptions of"
        "\nsimilar interests, yielding the lowest system-wide message rate."
    )


if __name__ == "__main__":
    main()
