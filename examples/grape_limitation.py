#!/usr/bin/env python3
"""Why relocating publishers alone is not enough (paper §II-B).

The paper motivates manipulating all three variables — brokers,
publishers, *and* subscribers — with an adversarial scenario: if at
least one subscriber subscribes to the same subscription at every
broker, then publisher relocation (GRAPE alone) cannot reduce the
system message rate at all, because every broker needs every
publication no matter where the publisher sits.  The full 3-phase
reconfiguration still wins by *moving the subscribers*.

This example constructs exactly that workload and measures three
configurations:

  1. MANUAL              — the baseline tree;
  2. GRAPE only          — same tree/subscribers, publishers relocated;
  3. full reconfiguration (CRAM + overlay + GRAPE).

Run:  python examples/grape_limitation.py
"""

from repro.core.baselines import manual_deployment
from repro.core.cram import CramAllocator
from repro.core.croc import Croc
from repro.core.deployment import BrokerTree, Deployment
from repro.core.grape import GrapeRelocator
from repro.experiments.runner import SETTLE_TIME
from repro.pubsub.client import PublisherClient, SubscriberClient
from repro.pubsub.message import Subscription
from repro.pubsub.network import PubSubNetwork
from repro.pubsub.predicate import parse_predicates
from repro.sim.rng import SeededRng
from repro.workloads.scenarios import cluster_homogeneous
from repro.workloads.stocks import StockQuoteFeed, stock_advertisement

MEASURE = 40.0


def build_network(scenario, seed):
    """One subscriber for every (symbol, broker) pair: the adversarial
    'same subscription at every broker' workload."""
    network = PubSubNetwork(profile_capacity=scenario.profile_capacity)
    for spec in scenario.broker_specs():
        network.add_broker(spec)
    rng = SeededRng(seed, "grape-limitation")
    subscription_ids = []
    for symbol in scenario.symbols:
        feed = StockQuoteFeed(symbol, rng)
        publisher = PublisherClient(
            client_id=f"pub-{symbol}",
            advertisement=stock_advertisement(symbol),
            feed=feed,
            rate=scenario.publication_rate,
            size_kb=scenario.message_kb,
        )
        network.register_publisher(publisher)
        for spec in network.broker_pool():
            sub_id = f"sub-{symbol}-at-{spec.broker_id}"
            subscription = Subscription(
                sub_id=sub_id,
                subscriber_id=sub_id,
                predicates=parse_predicates(
                    [("class", "=", "STOCK"), ("symbol", "=", symbol)]
                ),
            )
            network.register_subscriber(SubscriberClient(sub_id, [subscription]))
            subscription_ids.append(sub_id)
    return network, subscription_ids


def measure(network):
    network.run(SETTLE_TIME)
    network.metrics.reset_window()
    network.run(MEASURE)
    pool = network.broker_pool()
    summary = network.metrics.summary(
        len(pool), network.active_brokers,
        {s.broker_id: s.total_output_bandwidth for s in pool},
    )
    return summary


def pin_subscribers_everywhere(deployment, subscription_ids):
    """Place sub-SYM-at-BK on broker BK — one per broker, per symbol."""
    for sub_id in subscription_ids:
        broker_id = sub_id.rsplit("-at-", 1)[1]
        deployment.subscription_placement[sub_id] = broker_id
    return deployment


def main() -> None:
    scenario = cluster_homogeneous(
        subscriptions_per_publisher=1, scale=0.15, broker_bandwidth_kbps=200.0
    )
    rows = []

    # --- 1. MANUAL baseline ---------------------------------------------
    network, subscription_ids = build_network(scenario, seed=5)
    manual = manual_deployment(
        network.broker_pool(), [], [p.adv_id for p in network.publishers.values()],
        SeededRng(5, "manual"),
    )
    pin_subscribers_everywhere(manual, subscription_ids)
    network.apply_deployment(manual)
    network.run(scenario.derived_profiling_time())
    summary = measure(network)
    rows.append(("manual", summary))
    print(f"manual:      avg broker rate {summary.avg_broker_message_rate:.2f} msg/s")

    # --- 2. GRAPE only: same tree and subscribers, publishers moved ------
    croc = Croc(allocator_factory=lambda: CramAllocator("ios"),
                grape=GrapeRelocator("load"))
    gathered = croc.gather(network)
    tree = BrokerTree(manual.tree.root)
    for parent, child in manual.tree.edges():
        tree.add_broker(child, parent)
    # Rebuild per-broker units from the gathered records so GRAPE can
    # score candidate attachment points on the *existing* tree.
    from repro.core.units import AllocationUnit

    for record in gathered.records:
        unit = AllocationUnit.for_subscription(record, gathered.directory)
        tree.set_units(
            record.home_broker,
            list(tree.broker_units[record.home_broker]) + [unit],
        )
    grape_only = Deployment(
        tree=tree,
        subscription_placement=dict(manual.subscription_placement),
        publisher_placement=GrapeRelocator("load").place_publishers(
            tree, gathered.directory
        ),
        approach="grape-only",
    )
    network.apply_deployment(grape_only)
    summary = measure(network)
    rows.append(("grape-only", summary))
    print(f"grape-only:  avg broker rate {summary.avg_broker_message_rate:.2f} msg/s")

    # --- 3. Full 3-phase reconfiguration ----------------------------------
    croc.reconfigure(network)
    network.metrics.reset_window()
    network.run(MEASURE)
    pool = network.broker_pool()
    summary = network.metrics.summary(
        len(pool), network.active_brokers,
        {s.broker_id: s.total_output_bandwidth for s in pool},
    )
    rows.append(("full-croc", summary))
    print(f"full-croc:   avg broker rate {summary.avg_broker_message_rate:.2f} msg/s "
          f"on {summary.active_brokers} brokers")

    manual_rate = rows[0][1].avg_broker_message_rate
    grape_rate = rows[1][1].avg_broker_message_rate
    full_rate = rows[2][1].avg_broker_message_rate
    print(
        f"\nPublisher relocation alone changed the message rate by "
        f"{100 * (1 - grape_rate / manual_rate):+.1f}% — every broker still "
        f"needs every publication.\nThe full reconfiguration cut it by "
        f"{100 * (1 - full_rate / manual_rate):.1f}% by moving the "
        f"subscribers too."
    )


if __name__ == "__main__":
    main()
