#!/usr/bin/env python3
"""Adaptive operation: CROC tracking a drifting workload.

The paper reconfigures once; this example exercises the natural
extension of running CROC periodically while publisher rates drift
through a burst/quiet cycle (market open, lull, close).  Watch the
allocated broker count breathe with the load: the control loop grows
the deployment for the burst and shrinks it back afterwards —
"green" in the temporal dimension too.

Run:  python examples/adaptive_reconfiguration.py
"""

from repro.core.cram import CramAllocator
from repro.core.croc import Croc
from repro.experiments.continuous import ContinuousReconfigurator, RateDrift
from repro.experiments.report import format_rows
from repro.experiments.runner import ExperimentRunner
from repro.workloads import scenarios


def main() -> None:
    scenario = scenarios.cluster_homogeneous(
        subscriptions_per_publisher=20,
        scale=0.2,
        broker_bandwidth_kbps=25.0,  # tight enough that bursts need brokers
        profile_capacity=96,
    )
    runner = ExperimentRunner(scenario, seed=99)
    network = runner._build_network()
    runner._deploy_manual(network)
    print(f"scenario: {scenario.name} — {scenario.broker_count} brokers, "
          f"{scenario.total_subscriptions} subscriptions")

    croc = Croc(allocator_factory=lambda: CramAllocator(metric="ios"))
    drift = RateDrift(network, factors=(1.0, 2.0, 3.0, 1.0, 0.5))
    loop = ContinuousReconfigurator(
        croc,
        profiling_time=scenario.derived_profiling_time(),
        measurement_time=30.0,
        on_cycle_start=drift,
    )
    print("running 5 reconfiguration cycles "
          "(publication-rate factors 1.0, 2.0, 3.0, 1.0, 0.5) ...")
    reports = loop.run(network, cycles=5)

    print()
    print(format_rows([report.as_row() for report in reports]))
    brokers = [report.allocated_brokers for report in reports]
    print(
        f"\nThe deployment breathed from {min(brokers)} to {max(brokers)} "
        f"brokers as the workload drifted."
    )


if __name__ == "__main__":
    main()
