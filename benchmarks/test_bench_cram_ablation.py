"""Ablation: CRAM's three optimizations toggled independently.

DESIGN.md calls out GIF grouping, poset search pruning, and one-to-many
clustering as the design choices that make CRAM tractable/effective.
This bench runs CRAM on the same offline pool with each optimization
disabled and reports broker count, merges, closeness evaluations, and
wall time — quantifying what each buys.
"""

from __future__ import annotations

import time

import pytest

from conftest import BENCH_SCALE, BENCH_SUBS, print_figure
from repro.core.cram import CramAllocator
from repro.core.units import units_from_records
from repro.workloads.offline import offline_gather
from repro.workloads.scenarios import cluster_homogeneous

VARIANTS = (
    ("full", {}),
    ("no-gif-grouping", {"enable_gif_grouping": False}),
    ("no-pruning", {"enable_pruning": False}),
    ("no-one-to-many", {"enable_one_to_many": False}),
)

_cache = {}


def pool():
    if not _cache:
        scenario = cluster_homogeneous(
            subscriptions_per_publisher=BENCH_SUBS[-1], scale=BENCH_SCALE
        )
        gathered = offline_gather(scenario, seed=2011)
        _cache["gathered"] = gathered
        _cache["units"] = units_from_records(gathered.records, gathered.directory)
    return _cache["units"], _cache["gathered"]


def run_variants():
    units, gathered = pool()
    rows = []
    by_name = {}
    for name, kwargs in VARIANTS:
        allocator = CramAllocator(metric="ios", failure_budget=150, **kwargs)
        started = time.perf_counter()
        result = allocator.allocate(units, gathered.broker_pool, gathered.directory)
        elapsed = time.perf_counter() - started
        assert result.success
        stats = allocator.last_stats
        row = {
            "variant": name,
            "brokers": result.broker_count,
            "initial_gifs": stats.initial_gifs,
            "merges": stats.merges,
            "closeness_evaluations": stats.closeness_evaluations,
            "binpack_runs": stats.binpack_runs,
            "seconds": round(elapsed, 4),
        }
        rows.append(row)
        by_name[name] = (result, stats, elapsed)
    return rows, by_name


def test_abl_cram_optimizations(benchmark):
    rows, by_name = benchmark.pedantic(run_variants, rounds=1, iterations=1)
    print_figure("abl-cram-opts: CRAM optimization ablation (metric=ios)", rows)

    full_result, full_stats, full_time = by_name["full"]
    # Optimization 1: grouping shrinks the working set.
    _r, no_gif_stats, _t = by_name["no-gif-grouping"]
    assert full_stats.initial_gifs < no_gif_stats.initial_gifs

    # Optimization 2: pruning saves closeness evaluations.
    _r, no_prune_stats, _t = by_name["no-pruning"]
    assert full_stats.closeness_evaluations < no_prune_stats.closeness_evaluations

    # Every variant still allocates correctly and competitively.
    for name, (result, _stats, _t) in by_name.items():
        assert result.subscription_placement(), name
        assert result.broker_count <= full_result.broker_count + 2
