"""Ablation: GRAPE's objective modes (load vs delay vs mixed).

GRAPE (the paper's reference [5]) trades total broker message rate
against average delivery delay with a priority weight.  This bench runs
the same reconfiguration under the pure-load, pure-delay, and mixed
objectives and reports what each buys on the final deployment.
"""

from __future__ import annotations

import pytest

from conftest import BENCH_SCALE, BENCH_SUBS, BENCH_SEED, print_figure
from repro.core.grape import GrapeRelocator
from repro.experiments.runner import ExperimentRunner
from repro.workloads.scenarios import cluster_homogeneous

MODES = (
    ("load", GrapeRelocator(objective="load", priority=1.0)),
    ("delay", GrapeRelocator(objective="delay", priority=1.0)),
    ("mixed-0.5", GrapeRelocator(objective="load", priority=0.5)),
)


def run_modes():
    # Tight broker bandwidth spreads the deployment over enough brokers
    # that publisher placement actually matters (a 2-broker tree makes
    # every GRAPE mode pick the same attachment).
    scenario = cluster_homogeneous(
        subscriptions_per_publisher=BENCH_SUBS[-1],
        scale=BENCH_SCALE,
        broker_bandwidth_kbps=14.0,
        measurement_time=40.0,
    )
    results = {}
    for name, grape in MODES:
        runner = ExperimentRunner(scenario, seed=BENCH_SEED, grape=grape)
        results[name] = runner.run("cram-ios")
    return results


def test_abl_grape_modes(benchmark):
    results = benchmark.pedantic(run_modes, rounds=1, iterations=1)
    rows = [
        {
            "grape_mode": name,
            "allocated_brokers": result.allocated_brokers,
            "avg_broker_message_rate": round(
                result.summary.avg_broker_message_rate, 3
            ),
            "mean_hop_count": round(result.summary.mean_hop_count, 4),
            "mean_delivery_delay_ms": round(
                result.summary.mean_delivery_delay * 1000.0, 2
            ),
        }
        for name, result in results.items()
    ]
    print_figure("abl-grape: GRAPE objective comparison (cram-ios)", rows)
    for name, result in results.items():
        assert result.summary.delivery_count > 0, name
        # Publisher placement never changes the broker count.
        assert result.allocated_brokers == results["load"].allocated_brokers
    # The delay objective can never yield *more* delivery-weighted hops
    # than the load objective on the same tree.
    assert (
        results["delay"].summary.mean_hop_count
        <= results["load"].summary.mean_hop_count + 1e-9
    )
