"""Fused closeness-kernel speedup on the reduced-scale CRAM scenario.

Times full CRAM allocations with the bit-plane kernel forced on and
forced off (``use_kernel``) on one homogeneous pool, per metric, and
asserts the kernel's contract from both sides:

* **exactness** — identical broker counts and closeness-evaluation
  counters either way;
* **speed** — at this scenario the fused path is ≥3x faster for XOR
  (the exhaustive metric whose partner rows dominate) and ≥2x faster
  for IOU.

Rows land in ``BENCH_closeness_kernel.json`` (see ``conftest.record_bench``)
so the trajectory of the speedup is machine-readable run over run.
"""

from __future__ import annotations

import os
import time

import pytest

from conftest import BENCH_SCALE, BENCH_SEED, record_bench
from repro.core.cram import CramAllocator
from repro.core.units import units_from_records
from repro.workloads.offline import offline_gather
from repro.workloads.scenarios import cluster_homogeneous

#: Pool density for this suite.  Deliberately *not* the shared
#: ``REPRO_BENCH_SUBS`` sweep: the kernel's advantage grows with pool
#: size, and this scenario (960 units at the default scale) is where
#: the headline ratios are stable enough to gate on.
KERNEL_SUBS = int(os.environ.get("REPRO_BENCH_KERNEL_SUBS", "160"))
ROUNDS = int(os.environ.get("REPRO_BENCH_KERNEL_ROUNDS", "2"))

#: Wall-clock floors asserted below (and recorded in the JSON).
MIN_SPEEDUP = {"xor": 3.0, "iou": 2.0}

_pool_cache = {}


def pool():
    if not _pool_cache:
        scenario = cluster_homogeneous(
            subscriptions_per_publisher=KERNEL_SUBS, scale=BENCH_SCALE
        )
        gathered = offline_gather(scenario, seed=BENCH_SEED)
        _pool_cache["gathered"] = gathered
        _pool_cache["units"] = units_from_records(
            gathered.records, gathered.directory
        )
    return _pool_cache["units"], _pool_cache["gathered"]


def _timed_run(metric: str, use_kernel: bool):
    """Best-of-ROUNDS wall clock for one CRAM configuration."""
    units, gathered = pool()
    best_seconds = None
    result = allocator = None
    for _ in range(ROUNDS):
        allocator = CramAllocator(
            metric=metric, failure_budget=150, use_kernel=use_kernel
        )
        started = time.perf_counter()
        result = allocator.allocate(
            units, gathered.broker_pool, gathered.directory
        )
        elapsed = time.perf_counter() - started
        if best_seconds is None or elapsed < best_seconds:
            best_seconds = elapsed
    return best_seconds, result, allocator.last_stats


@pytest.mark.parametrize("metric", ["xor", "iou", "ios", "intersect"])
def test_kernel_speedup(benchmark, metric):
    naive_seconds, naive_result, naive_stats = _timed_run(metric, use_kernel=False)
    fused_seconds, fused_result, fused_stats = _timed_run(metric, use_kernel=True)

    # Exactness: the kernel must not change the outcome, only the clock.
    assert fused_result.success == naive_result.success
    assert fused_result.broker_count == naive_result.broker_count
    assert (
        fused_stats.closeness_evaluations == naive_stats.closeness_evaluations
    )
    assert fused_stats.kernel_used and not naive_stats.kernel_used

    speedup = naive_seconds / fused_seconds
    floor = MIN_SPEEDUP.get(metric, 1.0)
    record_bench(
        "closeness_kernel",
        [
            {
                "metric": metric,
                "subscriptions_per_publisher": KERNEL_SUBS,
                "rounds": ROUNDS,
                "naive_seconds": round(naive_seconds, 4),
                "kernel_seconds": round(fused_seconds, 4),
                "speedup": round(speedup, 2),
                "required_speedup": floor,
                "brokers": fused_result.broker_count,
                "closeness_evaluations": fused_stats.closeness_evaluations,
                "kernel_fused_evaluations": fused_stats.kernel_fused_evaluations,
                "kernel_memo_hits": fused_stats.kernel_memo_hits,
                "kernel_fallback_evaluations": (
                    fused_stats.kernel_fallback_evaluations
                ),
            }
        ],
        title="closeness: fused bit-plane kernel vs naive CRAM wall clock",
    )
    print(
        f"closeness-kernel {metric}: naive {naive_seconds:.4f}s, "
        f"fused {fused_seconds:.4f}s, speedup {speedup:.2f}x (floor {floor}x)"
    )
    assert speedup >= floor, (
        f"{metric}: fused kernel speedup {speedup:.2f}x below the "
        f"{floor}x floor at subs={KERNEL_SUBS}, scale={BENCH_SCALE}"
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
