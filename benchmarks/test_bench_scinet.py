"""Large-scale SciNet table (paper §VI-A).

The paper deploys 400 brokers / 72 publishers and 1,000 brokers /
100 publishers (225 subscriptions per publisher) on the SciNet HPC
cluster, with enough publishers to initially saturate the MANUAL
baseline.  This bench regenerates the table at ``REPRO_BENCH_SCINET``
scale (default 0.08 → 32 and 80 brokers) and asserts the same shape:
massive broker deallocation and message-rate reduction at scale.
"""

from __future__ import annotations

import pytest

from conftest import SCINET_SCALE, print_figure, run_matrix
from repro.workloads.scenarios import scinet

APPROACHES = ("manual", "binpacking", "cram-ios")

_cache = {}


def scinet_results():
    if not _cache:
        scenarios = {
            brokers: scinet(brokers=brokers, scale=SCINET_SCALE,
                            measurement_time=30.0)
            for brokers in (400, 1000)
        }
        _cache["scenarios"] = scenarios
        _cache["results"] = run_matrix(scenarios, APPROACHES)
    return _cache


def test_tab_scinet(benchmark):
    cache = benchmark.pedantic(scinet_results, rounds=1, iterations=1)
    rows = []
    for brokers in (400, 1000):
        scenario = cache["scenarios"][brokers]
        for approach in APPROACHES:
            result = cache["results"][(brokers, approach)]
            rows.append({
                "network": f"scinet-{brokers} (scaled: {scenario.broker_count})",
                "approach": approach,
                "subscriptions": scenario.total_subscriptions,
                "allocated_brokers": result.allocated_brokers,
                "broker_reduction_pct": round(100 * result.broker_reduction, 1),
                "msg_rate_reduction_pct": round(
                    100 * result.message_rate_reduction, 1
                ),
                "mean_hop_count": round(result.summary.mean_hop_count, 3),
            })
    print_figure("tab-scinet: large-scale deployments", rows)
    for brokers in (400, 1000):
        result = cache["results"][(brokers, "cram-ios")]
        assert result.broker_reduction > 0.6
        assert result.message_rate_reduction > 0.3
        assert result.summary.delivery_count > 0
