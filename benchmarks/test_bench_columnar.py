"""Columnar store & sharded Phase-2 benchmarks (paper-external).

Two measurements back the perf work in :mod:`repro.core.columnar` and
the sharded Phase 2 in :mod:`repro.core.cram`:

* **Vectorized closeness rows** — one-vs-all closeness over a 20k-row
  packed pool, ``ColumnarStore.closeness_rows`` (both backends)
  against the kernel's per-pair loop with the store disabled.  The
  ``>= 3x`` floor is asserted for the numpy backend whenever numpy is
  importable; the pure-Python backend records its honest ratio without
  a gate.
* **Sharded Phase-2 wall time** — one CRAM allocation of a ~2,400
  subscription pool, monolithic vs 4-way sharded (serial runner and
  the ``--jobs 4`` spawn-pool runner).  Sharding wins *algorithmically*
  — each shard's quadratic partner search runs over ~1/4 of the pool —
  so the serial-sharded ``>= 1.5x`` floor is asserted on every
  machine.  The pooled variant additionally pays worker spawn and task
  pickling; its floor is asserted only with >= 4 usable CPUs (the same
  convention as ``BENCH_parallel.json``), and a starved runner records
  its honest sub-1x number instead of failing on physics.  Sharded
  results are always asserted bit-identical between the serial and
  pooled runners.

Both figures land in ``BENCH_columnar.json`` with the core count and
gate status, so a trajectory reader can tell a real regression from a
starved runner.
"""

from __future__ import annotations

import time

from conftest import record_bench, print_figure
from repro.core.columnar import ColumnarStore, numpy_available
from repro.core.cram import CramAllocator, ShardedCramAllocator
from repro.core.kernel import BitPlaneLayout, ClosenessKernel
from repro.core.units import units_from_records
from repro.experiments import parallel
from repro.experiments.parallel import usable_cpus
from repro.workloads.offline import offline_gather
from repro.workloads.scenarios import cluster_homogeneous
from repro.workloads.streaming import (
    iter_synthetic_records,
    stream_into_store,
    synthetic_directory,
)

# ----------------------------------------------------------------------
# Vectorized closeness rows vs the per-pair kernel loop
# ----------------------------------------------------------------------

#: Fixed sizes (not the REPRO_BENCH_* knobs): the floors below are
#: calibrated against this exact pool and must not drift with the
#: figure-suite scale.
ROW_PUBLISHERS = 8
ROW_CAPACITY = 128
ROW_POOL = 20_000
ROW_ANCHORS = 40

#: Minimum pairs/sec ratio demanded of the numpy backend vs per-pair.
VECTOR_FLOOR = 3.0


def _store_rate(backend: str) -> float:
    directory = synthetic_directory(ROW_PUBLISHERS, ROW_CAPACITY)
    layout = BitPlaneLayout.from_directory(directory, ROW_CAPACITY)
    store = ColumnarStore(layout.total_bits, backend=backend)
    stream_into_store(
        iter_synthetic_records(ROW_POOL, ROW_PUBLISHERS, ROW_CAPACITY),
        layout, store,
    )
    candidates = list(range(ROW_POOL))
    start = time.perf_counter()
    for anchor in range(ROW_ANCHORS):
        store.closeness_rows("ios", anchor, candidates)
    elapsed = time.perf_counter() - start
    return ROW_ANCHORS * ROW_POOL / elapsed


def _per_pair_rate() -> float:
    directory = synthetic_directory(ROW_PUBLISHERS, ROW_CAPACITY)
    profiles = [
        record.profile
        for record in iter_synthetic_records(
            ROW_POOL, ROW_PUBLISHERS, ROW_CAPACITY
        )
    ]
    kernel = ClosenessKernel(directory, profiles, columnar=False)
    start = time.perf_counter()
    for anchor in range(ROW_ANCHORS):
        kernel.closeness_row("ios", profiles[anchor], profiles)
        # Distinct anchors never repeat a pair, so the memos only add
        # insert cost; clearing isolates the per-pair compute itself.
        kernel._memo.clear()
        kernel._id_memo.clear()
        kernel._id_pairs.clear()
    elapsed = time.perf_counter() - start
    return ROW_ANCHORS * ROW_POOL / elapsed


def test_vectorized_closeness_rows(benchmark):
    def measure():
        per_pair = _per_pair_rate()
        rows = [{
            "path": "kernel-per-pair",
            "pairs_per_s": round(per_pair),
            "ratio": 1.0,
        }]
        for backend in ("numpy", "python") if numpy_available() else ("python",):
            rate = _store_rate(backend)
            rows.append({
                "path": f"store-{backend}",
                "pairs_per_s": round(rate),
                "ratio": round(rate / per_pair, 2),
            })
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_figure(
        f"columnar: closeness rows, {ROW_ANCHORS}x{ROW_POOL} pool", rows
    )
    gate_active = numpy_available()
    record_bench(
        "columnar", [],
        closeness_rows={
            "pool": ROW_POOL,
            "anchors": ROW_ANCHORS,
            "floor": VECTOR_FLOOR,
            "floor_asserted": gate_active,
        },
    )
    if gate_active:
        numpy_row = next(r for r in rows if r["path"] == "store-numpy")
        assert numpy_row["ratio"] >= VECTOR_FLOOR, (
            f"numpy closeness rows only {numpy_row['ratio']}x of the "
            f"per-pair loop (floor {VECTOR_FLOOR}x)"
        )


# ----------------------------------------------------------------------
# Sharded Phase-2 wall time: monolithic vs 4 shards (serial / jobs=4)
# ----------------------------------------------------------------------

SHARD_SUBS = 120
SHARD_SCALE = 0.5
SHARD_BUCKETS = 16
SHARD_COUNT = 4
SHARD_JOBS = 4

#: Minimum end-to-end speedup of sharded Phase 2 vs monolithic.  The
#: serial-sharded variant is pure algorithmics (smaller quadratic
#: searches), so its floor is asserted everywhere; the jobs=4 variant
#: adds pool costs and is gated on having >= SHARD_JOBS usable CPUs.
SHARD_FLOOR = 1.5


def _placement(result):
    return [
        tuple(r.sub_id for unit in bin_.units for r in unit.members)
        for bin_ in result.bins
    ]


def test_sharded_phase2_wall_time(benchmark):
    scenario = cluster_homogeneous(
        subscriptions_per_publisher=SHARD_SUBS, scale=SHARD_SCALE,
        profile_capacity=128, threshold_buckets=SHARD_BUCKETS,
    )
    gathered = offline_gather(scenario, seed=2011)

    def timed(allocator):
        units = units_from_records(gathered.records, gathered.directory)
        start = time.perf_counter()
        result = allocator.allocate(
            units, gathered.broker_pool, gathered.directory
        )
        return result, time.perf_counter() - start

    def measure():
        mono, mono_s = timed(CramAllocator(metric="ios"))
        serial, serial_s = timed(
            ShardedCramAllocator(metric="ios", shards=SHARD_COUNT)
        )
        pool_allocator = ShardedCramAllocator(
            metric="ios", shards=SHARD_COUNT,
            runner=lambda tasks: parallel.run_shards(tasks, jobs=SHARD_JOBS),
        )
        pooled, pooled_s = timed(pool_allocator)
        assert pool_allocator.last_stats.shard_count == SHARD_COUNT
        assert pool_allocator.last_stats.shard_fallbacks == 0
        # The determinism contract: runner choice cannot change results.
        assert _placement(serial) == _placement(pooled)
        return [
            {"variant": "monolithic", "wall_s": round(mono_s, 3),
             "speedup": 1.0},
            {"variant": "sharded-serial", "wall_s": round(serial_s, 3),
             "speedup": round(mono_s / serial_s, 2)},
            {"variant": f"sharded-jobs{SHARD_JOBS}",
             "wall_s": round(pooled_s, 3),
             "speedup": round(mono_s / pooled_s, 2)},
        ]

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_figure(
        f"columnar: sharded Phase 2, {len(gathered.records)} subscriptions",
        rows,
    )
    cores = usable_cpus()
    pool_gate_active = cores >= SHARD_JOBS
    record_bench(
        "columnar", [],
        sharded_phase2={
            "subscriptions": len(gathered.records),
            "shards": SHARD_COUNT,
            "jobs": SHARD_JOBS,
            "usable_cpus": cores,
            "floor": SHARD_FLOOR,
            "serial_floor_asserted": True,
            "pool_floor_asserted": pool_gate_active,
        },
    )
    serial_row, pooled_row = rows[1], rows[2]
    assert serial_row["speedup"] >= SHARD_FLOOR, (
        f"sharded-serial: only {serial_row['speedup']}x of monolithic "
        f"Phase 2 (floor {SHARD_FLOOR}x)"
    )
    if pool_gate_active:
        assert pooled_row["speedup"] >= SHARD_FLOOR, (
            f"{pooled_row['variant']}: only {pooled_row['speedup']}x of "
            f"monolithic Phase 2 (floor {SHARD_FLOOR}x on a "
            f"{cores}-CPU machine)"
        )
