"""Allocation-algorithm computation time (paper fig-comptime claims).

Benchmarks each Phase-2 allocator on identical offline-profiled pools
(no simulator in the loop) across the subscription sweep, reproducing:

* FBF and BIN PACKING are orders of magnitude faster than CRAM
  (O(S) / O(S log S) vs O(S² log S));
* the XOR metric — which cannot prune empty relations — costs at least
  75% more than the paper's own prunable metrics.
"""

from __future__ import annotations

import time

import pytest

from conftest import BENCH_SCALE, BENCH_SUBS, print_figure
from repro.core.binpacking import BinPackingAllocator
from repro.core.cram import CramAllocator
from repro.core.fbf import FbfAllocator
from repro.core.units import units_from_records
from repro.workloads.offline import offline_gather
from repro.workloads.scenarios import cluster_homogeneous

SUBS = BENCH_SUBS[-1]

_pool_cache = {}


def pool():
    if not _pool_cache:
        scenario = cluster_homogeneous(
            subscriptions_per_publisher=SUBS, scale=BENCH_SCALE
        )
        gathered = offline_gather(scenario, seed=2011)
        units = units_from_records(gathered.records, gathered.directory)
        _pool_cache["gathered"] = gathered
        _pool_cache["units"] = units
    return _pool_cache["units"], _pool_cache["gathered"]


def _allocate(allocator):
    units, gathered = pool()
    result = allocator.allocate(units, gathered.broker_pool, gathered.directory)
    assert result.success
    return result


@pytest.mark.parametrize("name", ["fbf", "binpacking"])
def test_comptime_sorting_allocators(benchmark, name):
    allocator = FbfAllocator() if name == "fbf" else BinPackingAllocator()
    pool()  # warm the cache outside the timed region
    benchmark(_allocate, allocator)


@pytest.mark.parametrize("metric", ["intersect", "ios", "iou", "xor"])
def test_comptime_cram_metrics(benchmark, metric):
    pool()
    benchmark.pedantic(
        _allocate,
        args=(CramAllocator(metric=metric, failure_budget=150),),
        rounds=1,
        iterations=1,
    )


def test_comptime_xor_slower_than_prunable_metrics(benchmark):
    """Paper §IV-C.2: XOR requires at least 75% longer computation.

    Measured directly (not via the benchmark fixture) so the comparison
    runs on one machine state; the figure rows are printed for
    EXPERIMENTS.md.
    """
    units, gathered = pool()
    timings = {}
    evaluations = {}
    for metric in ("ios", "iou", "intersect", "xor"):
        allocator = CramAllocator(metric=metric, failure_budget=150)
        started = time.perf_counter()
        result = allocator.allocate(units, gathered.broker_pool, gathered.directory)
        timings[metric] = time.perf_counter() - started
        evaluations[metric] = allocator.last_stats.closeness_evaluations
        assert result.success
    rows = [
        {"metric": metric, "seconds": round(timings[metric], 4),
         "closeness_evaluations": evaluations[metric]}
        for metric in ("intersect", "ios", "iou", "xor")
    ]
    print_figure("fig-comptime: CRAM metric comparison", rows)
    fastest_prunable = min(timings["ios"], timings["iou"], timings["intersect"])
    assert timings["xor"] > fastest_prunable, (
        "the non-prunable XOR metric must cost more than the prunable ones"
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
