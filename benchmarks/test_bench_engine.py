"""Calendar-queue scheduler & batched-delivery benchmarks (paper-external).

Two figures back the event-core speed push in :mod:`repro.sim.engine`
and :mod:`repro.pubsub.network`:

* **Engine events/sec** — the calendar-queue engine against the
  binary-heap reference on a fan-out-heavy microbench: a large
  standing-timer population (subscription leases, retry deadlines)
  that never fires inside the measured window, plus bursts of
  same-timestamp fan-out events — the shape batched delivery feeds
  the engine.  The heap pays ``O(log n)`` of the standing population
  per operation; the calendar queue pays ``O(1)``.  Floor: **2.0x**.
* **End-to-end cell time** — one full ``cram-ios`` experiment cell
  with the heap engine + per-destination delivery versus the calendar
  engine + batched fan-out delivery.  Both configurations are first
  checked bit-identical on the result row (``computation_s``
  excluded), then timed.  Floor: **1.3x**.

Runs are interleaved (ref, fast, ref, fast, …) and scored min-over-
repeats per configuration so single-core scheduling noise cancels
instead of inflating either side; a floor miss triggers one extra
repeat round before failing.  Both figures land in
``BENCH_engine.json``.
"""

from __future__ import annotations

import os
import time

from conftest import record_bench, print_figure
from repro.core.config import DELIVERY_BATCH_ENV_VAR, RunConfig
from repro.experiments.runner import ExperimentRunner
from repro.sim.engine import CalendarSimulator, Simulator
from repro.workloads.scenarios import cluster_homogeneous

# ----------------------------------------------------------------------
# Engine events/sec: calendar queue vs binary heap
# ----------------------------------------------------------------------

#: Fixed sizes (not the REPRO_BENCH_* knobs): the floors are calibrated
#: to this exact shape and must not drift with the figure-suite scale.
MICRO_STANDING = 1_000_000
MICRO_SLICES = 9
MICRO_GROUPS = 30
MICRO_FANOUT = 256
MICRO_TRIALS = 2

#: Minimum calendar/heap events-per-second ratio on the fan-out bench.
MICRO_FLOOR = 2.0


def _micro_rate(sim_cls) -> float:
    """Best events/sec over the measurement slices for one engine."""
    sim = sim_cls()

    def cb():
        pass

    sched = sim.schedule_at
    for i in range(MICRO_STANDING):
        sched(100.0 + (i % 1000) * 0.1 + i * 1e-7, cb)
    base = 0.0
    best = 0.0
    per_slice = MICRO_GROUPS * MICRO_FANOUT
    for _ in range(MICRO_SLICES):
        start = time.perf_counter()
        for _group in range(MICRO_GROUPS):
            for _fan in range(MICRO_FANOUT):
                sched(base, cb)
            sim.run(until=base + 0.0005)
            base += 0.0007
        best = max(best, per_slice / (time.perf_counter() - start))
    return best


def test_calendar_vs_heap_events_per_second(benchmark):
    def measure():
        heap_best = 0.0
        calendar_best = 0.0
        for _ in range(MICRO_TRIALS):
            heap_best = max(heap_best, _micro_rate(Simulator))
            calendar_best = max(calendar_best, _micro_rate(CalendarSimulator))
        return heap_best, calendar_best

    heap_rate, calendar_rate = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = calendar_rate / heap_rate
    if ratio < MICRO_FLOOR:  # one retry: absorb a noise spike, not a regression
        heap_retry, calendar_retry = measure()
        heap_rate = max(heap_rate, heap_retry)
        calendar_rate = max(calendar_rate, calendar_retry)
        ratio = calendar_rate / heap_rate
    rows = [{
        "standing_timers": MICRO_STANDING,
        "fanout_events": MICRO_SLICES * MICRO_GROUPS * MICRO_FANOUT,
        "heap_events_per_s": round(heap_rate),
        "calendar_events_per_s": round(calendar_rate),
        "ratio": round(ratio, 3),
        "floor": MICRO_FLOOR,
    }]
    print_figure("engine: calendar vs heap events/sec, fan-out microbench", rows)
    assert ratio >= MICRO_FLOOR, (
        f"calendar queue only {ratio:.2f}x of the heap engine "
        f"(floor {MICRO_FLOOR}x)"
    )


# ----------------------------------------------------------------------
# End-to-end cell: heap + per-destination vs calendar + batched fan-out
# ----------------------------------------------------------------------

CELL_SUBS = 150
CELL_SCALE = 0.05
CELL_MEASUREMENT_TIME = 120.0
CELL_APPROACH = "cram-ios"
CELL_SEED = 2011
CELL_REPEATS = 3

#: Minimum end-to-end speedup of the fast configuration.
CELL_FLOOR = 1.3


def _run_cell(engine: str, batching: bool):
    """One full experiment cell under the given engine/batching config.

    Returns ``(comparable_row, elapsed_seconds)``; the row pins every
    float's bits via ``repr`` with the wall-clock field removed.
    """
    scenario = cluster_homogeneous(
        subscriptions_per_publisher=CELL_SUBS,
        scale=CELL_SCALE,
        measurement_time=CELL_MEASUREMENT_TIME,
    )
    previous = os.environ.get(DELIVERY_BATCH_ENV_VAR)
    os.environ[DELIVERY_BATCH_ENV_VAR] = "1" if batching else "0"
    try:
        runner = ExperimentRunner(
            scenario, seed=CELL_SEED, cram_failure_budget=150,
            config=RunConfig(engine=engine),
        )
        start = time.perf_counter()
        result = runner.run(CELL_APPROACH)
        elapsed = time.perf_counter() - start
    finally:
        if previous is None:
            del os.environ[DELIVERY_BATCH_ENV_VAR]
        else:
            os.environ[DELIVERY_BATCH_ENV_VAR] = previous
    row = result.as_row()
    row.pop("computation_s")  # wall-clock measurement, not simulation output
    return {key: repr(value) for key, value in row.items()}, elapsed


def test_end_to_end_cell_speedup(benchmark):
    def measure(repeats):
        ref_times, fast_times = [], []
        ref_row = fast_row = None
        for _ in range(repeats):
            ref_row, elapsed = _run_cell("heap", batching=False)
            ref_times.append(elapsed)
            fast_row, elapsed = _run_cell("calendar", batching=True)
            fast_times.append(elapsed)
        return ref_row, fast_row, min(ref_times), min(fast_times)

    ref_row, fast_row, ref_s, fast_s = benchmark.pedantic(
        lambda: measure(CELL_REPEATS), rounds=1, iterations=1
    )
    # The fast path must be an optimization, not a different simulation.
    assert ref_row == fast_row
    ratio = ref_s / fast_s
    if ratio < CELL_FLOOR:  # one retry: absorb a noise spike, not a regression
        _ref, _fast, ref_retry, fast_retry = measure(2)
        ref_s = min(ref_s, ref_retry)
        fast_s = min(fast_s, fast_retry)
        ratio = ref_s / fast_s
    rows = [{
        "scenario": f"cluster/{CELL_SUBS}subs/scale={CELL_SCALE}",
        "approach": CELL_APPROACH,
        "heap_nobatch_s": round(ref_s, 3),
        "calendar_batch_s": round(fast_s, 3),
        "speedup": round(ratio, 3),
        "floor": CELL_FLOOR,
    }]
    print_figure("engine: end-to-end cell, heap+per-dest vs calendar+batched", rows)
    record_bench(
        "engine", [],
        cell_speedup={
            "speedup": round(ratio, 3),
            "floor": CELL_FLOOR,
            "bit_identical_rows": True,
        },
    )
    assert ratio >= CELL_FLOOR, (
        f"calendar+batched cell only {ratio:.2f}x of heap+per-destination "
        f"(floor {CELL_FLOOR}x)"
    )
