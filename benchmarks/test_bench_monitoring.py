"""Language independence as a measured row (our addition).

The paper's framework clusters on bit vectors, never on the
subscription language, so the same pipeline must consolidate a
workload with a completely different schema and distribution.  This
bench runs the full MANUAL → CRAM pipeline on the systems-monitoring
domain and asserts the same qualitative outcomes the stock-quote
figures show: large broker deallocation, large message-rate reduction,
collapsed hop counts.
"""

from __future__ import annotations

import pytest

from conftest import print_figure
from repro.experiments.monitoring_runner import (
    MonitoringScenario,
    run_monitoring_experiment,
)


def test_tab_language_independence(benchmark):
    result = benchmark.pedantic(
        run_monitoring_experiment,
        kwargs={"scenario": MonitoringScenario(), "seed": 7},
        rounds=1,
        iterations=1,
    )
    rows = [result.as_row()]
    print_figure("tab-monitoring: the framework on a non-stock workload", rows)
    assert result.broker_reduction > 0.5
    assert result.message_rate_reduction > 0.3
    assert result.reconfigured.delivery_count > 0
    assert result.reconfigured.mean_hop_count < result.baseline.mean_hop_count
    assert result.gif_reduction > 0.1
