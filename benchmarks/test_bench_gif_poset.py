"""GIF-grouping and poset-pruning statistics (paper §IV-C.1/2 claims).

* ``tab-gif``: GIF grouping reduced the paper's 8,000-subscription pool
  by up to 61%.  The same workload recipe (40% identical templates per
  symbol + bucketed inequality thresholds) is measured here across the
  subscription sweep.
* ``tab-pruning``: the poset search cut closeness computations from
  ~5,000,000 to ~280,000 on 3,200 GIFs, and inserting 3,200 GIFs took
  around 2 s.  This bench counts evaluations with and without pruning
  and times poset insertion at the configured scale.
"""

from __future__ import annotations

import pytest

from conftest import BENCH_SCALE, BENCH_SUBS, print_figure
from repro.core.closeness import make_metric
from repro.core.gif import build_gifs, gif_reduction_ratio
from repro.core.poset import Poset
from repro.core.units import units_from_records
from repro.workloads.offline import offline_gather
from repro.workloads.scenarios import cluster_homogeneous


def _units(subs):
    scenario = cluster_homogeneous(subscriptions_per_publisher=subs,
                                   scale=BENCH_SCALE)
    gathered = offline_gather(scenario, seed=2011)
    return units_from_records(gathered.records, gathered.directory)


def test_tab_gif_reduction(benchmark):
    rows = benchmark.pedantic(
        lambda: [
            {
                "subscriptions": len(units),
                "gifs": len(build_gifs(units)),
                "reduction_pct": round(
                    100 * gif_reduction_ratio(len(units), len(build_gifs(units))), 1
                ),
            }
            for units in (_units(subs) for subs in BENCH_SUBS)
        ],
        rounds=1,
        iterations=1,
    )
    print_figure("tab-gif: GIF grouping reduction (paper: up to 61%)", rows)
    for row in rows:
        assert 0.2 <= row["reduction_pct"] / 100 <= 0.85


def test_tab_poset_insertion_time(benchmark):
    units = _units(BENCH_SUBS[-1])
    gifs = build_gifs(units)

    def insert_all():
        poset = Poset()
        for gif in gifs:
            poset.insert(gif)
        return poset

    poset = benchmark(insert_all)
    assert len(poset) == len(gifs)
    poset.validate()


def test_tab_pruning_saves_closeness_evaluations(benchmark):
    """Pruned initial closest-partner search vs exhaustive scan."""
    units = _units(BENCH_SUBS[-1])
    gifs = build_gifs(units)
    poset = Poset()
    for gif in gifs:
        poset.insert(gif)

    def pruned_search():
        metric = make_metric("ios")
        for gif in gifs:
            poset.closest_partner(gif, metric)
        return metric.evaluations

    pruned = benchmark.pedantic(pruned_search, rounds=1, iterations=1)
    exhaustive_metric = make_metric("ios")
    for gif in gifs:
        for other in gifs:
            if other is not gif:
                exhaustive_metric(gif.profile, other.profile)
    exhaustive = exhaustive_metric.evaluations
    rows = [{
        "gifs": len(gifs),
        "pruned_evaluations": pruned,
        "exhaustive_evaluations": exhaustive,
        "saving_factor": round(exhaustive / max(1, pruned), 1),
    }]
    print_figure("tab-pruning: closeness evaluations (paper: 5M → 280k ≈ 18x)", rows)
    assert pruned < exhaustive / 2, "pruning must cut the search substantially"
