"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md's per-experiment index) and prints the rows so they can be
compared with the published plots.  EXPERIMENTS.md records a captured
run.

Scaling
-------
The paper's full-size scenarios (80 brokers / 8,000 subscriptions on a
cluster; 400–1,000 brokers on SciNet) are minutes-long pure-Python
simulations, so the harness runs reduced sizes by default.  Environment
knobs restore the paper's scale:

=====================  =========  ==========================================
variable               default    meaning
=====================  =========  ==========================================
REPRO_BENCH_SCALE      0.15       broker/publisher scale factor (1.0 = paper)
REPRO_BENCH_SUBS       12,25      subscriptions-per-publisher sweep
                                  (paper: 50,100,150,200)
REPRO_BENCH_SCINET     0.08       scale for the SciNet scenarios
REPRO_BENCH_SEED       2011       master seed
REPRO_BENCH_OUT        .          directory for ``BENCH_<suite>.json`` files
=====================  =========  ==========================================

Machine-readable trajectory
---------------------------
Besides printing the aligned tables, every figure is recorded as JSON:
:func:`print_figure` (and :func:`record_bench` for suites with extra
payload) append rows to an in-memory registry that a session-scoped
fixture flushes to ``BENCH_<suite>.json`` under ``REPRO_BENCH_OUT``.
Each file carries the scenario knobs active for the run, so a CI
artifact is enough to reconstruct what was measured.
"""

from __future__ import annotations

import json
import os
import re
from typing import Dict, List, Tuple

import pytest

from repro.experiments.runner import APPROACHES, ExperimentRunner
from repro.workloads.scenarios import Scenario

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.15"))
BENCH_SUBS = tuple(
    int(x) for x in os.environ.get("REPRO_BENCH_SUBS", "12,25").split(",")
)
SCINET_SCALE = float(os.environ.get("REPRO_BENCH_SCINET", "0.08"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2011"))
BENCH_OUT = os.environ.get("REPRO_BENCH_OUT", ".")

#: The paper's ten approaches, in its presentation order — the
#: baselines plus the allocator registry's import-time snapshot.
ALL_APPROACHES = APPROACHES


def run_matrix(
    scenarios_by_key: Dict[object, Scenario],
    approaches: Tuple[str, ...],
    seed: int = BENCH_SEED,
) -> Dict[Tuple[object, str], object]:
    """Run every (scenario, approach) cell of a figure's sweep."""
    results = {}
    for key, scenario in scenarios_by_key.items():
        for approach in approaches:
            runner = ExperimentRunner(scenario, seed=seed, cram_failure_budget=150)
            results[(key, approach)] = runner.run(approach)
    return results


# suite key -> {"title", "rows", "extra"}; flushed to BENCH_<suite>.json
_RECORDED: Dict[str, dict] = {}


def _knobs() -> dict:
    return {
        "scale": BENCH_SCALE,
        "subscriptions_per_publisher": list(BENCH_SUBS),
        "scinet_scale": SCINET_SCALE,
        "seed": BENCH_SEED,
    }


def record_bench(suite: str, rows: List[dict], title: str = "", **extra) -> None:
    """Register a figure's rows for the machine-readable trajectory.

    ``suite`` becomes the file name (``BENCH_<suite>.json``); repeated
    calls for one suite extend its row list (sweep tests record one row
    batch per cell).  ``extra`` key/values land next to the rows —
    suites use it for derived aggregates (e.g. speedup ratios).
    """
    suite = re.sub(r"[^A-Za-z0-9._-]+", "-", suite.strip()) or "untitled"
    entry = _RECORDED.setdefault(
        suite, {"title": title, "rows": [], "extra": {}}
    )
    if title and not entry["title"]:
        entry["title"] = title
    entry["rows"].extend(rows)
    entry["extra"].update(extra)


def print_figure(title: str, rows: List[dict], columns=None) -> None:
    from repro.experiments.report import format_rows

    # The title's leading "<figure-key>:" names the suite file.
    record_bench(title.split(":", 1)[0], rows, title=title)
    print(f"\n=== {title} ===")
    print(format_rows(rows, columns=columns))


@pytest.fixture(scope="session", autouse=True)
def bench_trajectory():
    """Flush every recorded suite to ``BENCH_<suite>.json`` on exit."""
    yield
    os.makedirs(BENCH_OUT, exist_ok=True)
    for suite, entry in sorted(_RECORDED.items()):
        payload = {
            "suite": suite,
            "title": entry["title"],
            "knobs": _knobs(),
            "rows": entry["rows"],
        }
        payload.update(entry["extra"])
        path = os.path.join(BENCH_OUT, f"BENCH_{suite}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[bench-trajectory] wrote {path} ({len(entry['rows'])} rows)")
