"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md's per-experiment index) and prints the rows so they can be
compared with the published plots.  EXPERIMENTS.md records a captured
run.

Scaling
-------
The paper's full-size scenarios (80 brokers / 8,000 subscriptions on a
cluster; 400–1,000 brokers on SciNet) are minutes-long pure-Python
simulations, so the harness runs reduced sizes by default.  Environment
knobs restore the paper's scale:

=====================  =========  ==========================================
variable               default    meaning
=====================  =========  ==========================================
REPRO_BENCH_SCALE      0.15       broker/publisher scale factor (1.0 = paper)
REPRO_BENCH_SUBS       12,25      subscriptions-per-publisher sweep
                                  (paper: 50,100,150,200)
REPRO_BENCH_SCINET     0.08       scale for the SciNet scenarios
REPRO_BENCH_SEED       2011       master seed
=====================  =========  ==========================================
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple

import pytest

from repro.experiments.runner import ExperimentRunner
from repro.workloads.scenarios import Scenario

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.15"))
BENCH_SUBS = tuple(
    int(x) for x in os.environ.get("REPRO_BENCH_SUBS", "12,25").split(",")
)
SCINET_SCALE = float(os.environ.get("REPRO_BENCH_SCINET", "0.08"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2011"))

#: The paper's ten approaches, in its presentation order.
ALL_APPROACHES = (
    "manual",
    "automatic",
    "pairwise-k",
    "pairwise-n",
    "fbf",
    "binpacking",
    "cram-intersect",
    "cram-xor",
    "cram-ios",
    "cram-iou",
)


def run_matrix(
    scenarios_by_key: Dict[object, Scenario],
    approaches: Tuple[str, ...],
    seed: int = BENCH_SEED,
) -> Dict[Tuple[object, str], object]:
    """Run every (scenario, approach) cell of a figure's sweep."""
    results = {}
    for key, scenario in scenarios_by_key.items():
        for approach in approaches:
            runner = ExperimentRunner(scenario, seed=seed, cram_failure_budget=150)
            results[(key, approach)] = runner.run(approach)
    return results


def print_figure(title: str, rows: List[dict], columns=None) -> None:
    from repro.experiments.report import format_rows

    print(f"\n=== {title} ===")
    print(format_rows(rows, columns=columns))
