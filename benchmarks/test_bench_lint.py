"""reprolint wall-time benchmark (tooling, paper-external).

The lint gate runs on every CI push, so its latency is a budgeted
quantity like any other: a cold whole-program run (parse + per-file
rules + the three project passes over ``src`` with the tests and
benchmarks usage index) and a cache-warm rerun are timed, gated
against absolute budgets, and recorded in ``BENCH_lint.json``.  The
warm run must also reproduce the cold findings byte-for-byte — a cache
that changes results would be worse than no cache.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

from conftest import record_bench

from repro.tools.lint import run_lint
from repro.tools.output import render_json

#: Absolute wall-time budgets (seconds), ~8x local headroom for CI jitter.
COLD_BUDGET_S = 20.0
CACHED_BUDGET_S = 10.0

#: Anchored at the repo root so the bench runs from any working directory.
REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")
LINT_ARGS = dict(
    usage_paths=[str(REPO_ROOT / "tests"), str(REPO_ROOT / "benchmarks")]
)


def _snapshot(run) -> str:
    return render_json(
        run.findings, run.parse_failures, run.checked,
        run.rule_names, run.pass_names, run.suppressed,
    )


def test_lint_cold_and_cached_within_budget():
    with tempfile.TemporaryDirectory() as tmp:
        cache = Path(tmp) / "cache.json"

        start = time.perf_counter()
        cold = run_lint([SRC], cache_path=cache, **LINT_ARGS)
        cold_s = time.perf_counter() - start

        start = time.perf_counter()
        warm = run_lint([SRC], cache_path=cache, **LINT_ARGS)
        cached_s = time.perf_counter() - start

    assert cold.parse_failures == []
    assert warm.cache_misses == 0, "second run must be fully cache-served"
    assert _snapshot(warm) == _snapshot(cold), (
        "cache-warm findings must be byte-identical to the cold run"
    )

    rows = [
        {
            "phase": "cold",
            "wall_s": round(cold_s, 3),
            "budget_s": COLD_BUDGET_S,
            "files": cold.checked,
            "findings": len(cold.findings),
        },
        {
            "phase": "cached",
            "wall_s": round(cached_s, 3),
            "budget_s": CACHED_BUDGET_S,
            "files": warm.checked,
            "findings": len(warm.findings),
        },
    ]
    record_bench(
        "lint", rows, title="lint: reprolint wall time (cold vs cached)",
        speedup=round(cold_s / cached_s, 2) if cached_s > 0 else None,
    )
    print(json.dumps(rows, indent=2))

    assert cold_s <= COLD_BUDGET_S, f"cold lint {cold_s:.2f}s > {COLD_BUDGET_S}s"
    assert cached_s <= CACHED_BUDGET_S, (
        f"cached lint {cached_s:.2f}s > {CACHED_BUDGET_S}s"
    )
