"""Homogeneous-cluster figures (paper §VI, cluster testbed).

Regenerates, at the configured scale, the four homogeneous-scenario
figures: average broker message rate, number of allocated brokers,
average delivery delay, and average hop count — each as a function of
the total number of subscriptions, for all ten approaches.

The paper's headline shapes asserted here:

* the CROC-driven approaches deallocate the vast majority of brokers
  (up to 91% in the paper) while MANUAL/AUTOMATIC/PAIRWISE keep all;
* the average broker message rate drops sharply (up to 92% in the
  paper) for the capacity-aware approaches;
* BIN PACKING never allocates more brokers than FBF;
* CRAM never allocates more brokers than BIN PACKING;
* hop counts collapse (publishers end up next to their subscribers).
"""

from __future__ import annotations

import pytest

from conftest import ALL_APPROACHES, BENCH_SCALE, BENCH_SUBS, print_figure, run_matrix
from repro.workloads.scenarios import cluster_homogeneous

_cache = {}


def homo_results():
    if not _cache:
        scenarios = {
            subs: cluster_homogeneous(
                subscriptions_per_publisher=subs,
                scale=BENCH_SCALE,
                measurement_time=40.0,
            )
            for subs in BENCH_SUBS
        }
        _cache["scenarios"] = scenarios
        _cache["results"] = run_matrix(scenarios, ALL_APPROACHES)
    return _cache


def _rows(metric_key):
    cache = homo_results()
    rows = []
    for subs in BENCH_SUBS:
        scenario = cache["scenarios"][subs]
        row = {"total_subscriptions": scenario.total_subscriptions}
        for approach in ALL_APPROACHES:
            result = cache["results"][(subs, approach)]
            row[approach] = result.as_row()[metric_key]
        rows.append(row)
    return rows


def test_fig_homo_message_rate(benchmark):
    cache = benchmark.pedantic(homo_results, rounds=1, iterations=1)
    rows = _rows("avg_broker_message_rate")
    print_figure("fig-homo-msgrate: avg broker message rate (msg/s)", rows)
    for subs in BENCH_SUBS:
        results = cache["results"]
        manual = results[(subs, "manual")].summary.avg_broker_message_rate
        for approach in ("binpacking", "fbf", "cram-ios", "cram-iou", "cram-intersect"):
            measured = results[(subs, approach)].summary.avg_broker_message_rate
            assert measured < manual, (
                f"{approach} should beat MANUAL at {subs} subs/publisher"
            )
        cram = results[(subs, "cram-ios")]
        assert cram.message_rate_reduction > 0.4


def test_fig_homo_brokers(benchmark):
    cache = benchmark.pedantic(homo_results, rounds=1, iterations=1)
    rows = _rows("allocated_brokers")
    print_figure("fig-homo-brokers: allocated brokers", rows)
    results = cache["results"]
    pool = cache["scenarios"][BENCH_SUBS[0]].broker_count
    for subs in BENCH_SUBS:
        for baseline in ("manual", "automatic", "pairwise-k", "pairwise-n"):
            assert results[(subs, baseline)].allocated_brokers == pool
        # Phase-2 invariants (the Phase-3 tree may add internal brokers
        # differently per allocator, so comparisons use phase2_brokers).
        fbf = results[(subs, "fbf")].extra["phase2_brokers"]
        binpack = results[(subs, "binpacking")].extra["phase2_brokers"]
        assert binpack <= fbf, "BIN PACKING never uses more brokers than FBF"
        for metric in ("intersect", "xor", "ios", "iou"):
            cram = results[(subs, f"cram-{metric}")].extra["phase2_brokers"]
            assert cram <= binpack, "CRAM starts from the BIN PACKING scheme"
        assert results[(subs, "cram-ios")].broker_reduction > 0.5


def test_fig_homo_delay(benchmark):
    benchmark.pedantic(homo_results, rounds=1, iterations=1)
    rows = _rows("mean_delivery_delay_ms")
    print_figure("fig-homo-delay: mean delivery delay (ms)", rows)
    results = homo_results()["results"]
    for subs in BENCH_SUBS:
        for approach in ALL_APPROACHES:
            assert results[(subs, approach)].summary.delivery_count > 0


def test_fig_homo_hops(benchmark):
    cache = benchmark.pedantic(homo_results, rounds=1, iterations=1)
    rows = _rows("mean_hop_count")
    print_figure("fig-homo-hops: mean publication hop count", rows)
    results = cache["results"]
    for subs in BENCH_SUBS:
        manual = results[(subs, "manual")].summary.mean_hop_count
        for approach in ("binpacking", "cram-ios", "cram-iou"):
            assert results[(subs, approach)].summary.mean_hop_count < manual
