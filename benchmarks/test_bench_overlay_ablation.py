"""Ablation: the three Phase-3 overlay-construction optimizations.

Paper Section V introduces (A) pure-forwarder elimination, (B) child
takeover, and (C) best-fit broker replacement, all aimed at shaving
further brokers off the tree.  This bench builds the overlay for the
same Phase-2 allocation with each optimization disabled and reports the
resulting tree sizes and shapes.

The pool mixes a big-broker tier (leaves and internal nodes) with a
small-broker tier that only best-fit replacement can exploit, so every
optimization has room to act.
"""

from __future__ import annotations

import pytest

from conftest import BENCH_SUBS, print_figure
from repro.core.binpacking import BinPackingAllocator
from repro.core.overlay_builder import OverlayBuilder
from repro.core.units import units_from_records
from repro.workloads.offline import offline_gather
from repro.workloads.scenarios import BrokerTier, Scenario

VARIANTS = (
    ("full", {}),
    ("no-forwarder-elimination", {"eliminate_pure_forwarders": False}),
    ("no-takeover", {"takeover_children": False}),
    ("no-best-fit", {"best_fit_replacement": False}),
    ("none", {
        "eliminate_pure_forwarders": False,
        "takeover_children": False,
        "best_fit_replacement": False,
    }),
)


def build_all():
    scenario = Scenario(
        name="abl-overlay",
        tiers=(BrokerTier(count=20, bandwidth_kbps=8.0),
               BrokerTier(count=10, bandwidth_kbps=2.5)),
        publishers=6,
        subscription_counts=(BENCH_SUBS[-1],) * 6,
    )
    gathered = offline_gather(scenario, seed=2011)
    units = units_from_records(gathered.records, gathered.directory)
    allocation = BinPackingAllocator().allocate(
        units, gathered.broker_pool, gathered.directory
    )
    assert allocation.success
    rows = []
    trees = {}
    for name, kwargs in VARIANTS:
        builder = OverlayBuilder(BinPackingAllocator, **kwargs)
        tree = builder.build(allocation, gathered.broker_pool, gathered.directory)
        tree.validate()
        stats = builder.last_stats
        rows.append({
            "variant": name,
            "tree_brokers": len(tree),
            "height": tree.height(),
            "forwarders_removed": stats.pure_forwarders_eliminated,
            "takeovers": stats.children_taken_over,
            "best_fit_swaps": stats.best_fit_replacements,
            "fallback_roots": stats.fallback_roots,
        })
        trees[name] = (tree, stats)
    return rows, trees, len(units)


def test_abl_overlay_optimizations(benchmark):
    rows, trees, total_units = benchmark.pedantic(build_all, rounds=1, iterations=1)
    print_figure("abl-overlay-opts: Phase-3 optimization ablation", rows)
    full_tree, full_stats = trees["full"]
    none_tree, _ = trees["none"]
    # The optimizations never enlarge the tree and, at this scale,
    # strictly shrink it (a forwarder or an absorbable child exists).
    assert len(full_tree) < len(none_tree)
    # With everything on, at least one optimization fired.
    assert (
        full_stats.pure_forwarders_eliminated
        + full_stats.children_taken_over
        + full_stats.best_fit_replacements
    ) >= 1
    # Every variant still places every subscription.
    for name, (tree, _stats) in trees.items():
        assert len(tree.subscription_placement()) == total_units, name
