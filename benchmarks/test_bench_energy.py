"""Energy accounting overhead and the multi-objective Pareto sweep.

Two gates back the energy subsystem (paper-external; the bit-identity
of attached vs detached outputs is separately pinned by
``tests/test_energy_equivalence.py``):

* **Attachment overhead** — one cram-ios cell runs with and without
  ``RunConfig.energy``; the energy model is pure post-processing of
  already-collected counters, so the attached run must keep at least
  ``OVERHEAD_FLOOR`` of detached throughput (best-of-3 wall times) and
  the result rows must stay bit-identical.
* **Green trade-off front** — the three-approach sweep (manual,
  binpacking, cram-ios) is ranked by non-dominated {brokers, joules,
  delay, delivery-rate} vectors; cram-ios must land on the front and
  beat manual on at least ``DOMINANCE_FLOOR`` objectives (the paper's
  consolidation claim, priced in joules).

Both figures land in ``BENCH_energy.json``; ``bench-results/`` keeps a
captured baseline.
"""

from __future__ import annotations

import time

from conftest import BENCH_SEED, print_figure, record_bench

from repro.core.config import RunConfig
from repro.core.energy import EnergySpec
from repro.core.floats import approx_eq, approx_le
from repro.experiments.parallel import CellSpec, run_spec
from repro.experiments.sweeps import (
    PARETO_OBJECTIVES,
    homogeneous_scenarios,
    pareto_front,
)

#: Attached must retain at least this fraction of detached throughput.
OVERHEAD_FLOOR = 0.95

#: cram-ios must beat manual on at least this many objectives.
DOMINANCE_FLOOR = 2

CELL_SUBS = 10
CELL_SCALE = 0.2
CELL_MEASUREMENT_TIME = 30.0
CELL_APPROACH = "cram-ios"
ROUNDS = 3

PARETO_APPROACHES = ("manual", "binpacking", "cram-ios")


def _scenario():
    return homogeneous_scenarios(
        subs_sweep=(CELL_SUBS,), scale=CELL_SCALE,
        measurement_time=CELL_MEASUREMENT_TIME,
    )[0]


def _cell_spec(energy: bool) -> CellSpec:
    return CellSpec(
        scenario=_scenario(), approach=CELL_APPROACH, seed=BENCH_SEED,
        config=RunConfig(energy=EnergySpec()) if energy else None,
    )


def _comparable_row(result) -> dict:
    row = result.as_row()
    row.pop("computation_s")  # wall-clock measurement, not simulation output
    return {key: repr(value) for key, value in row.items()}


def _best_cell_time(energy: bool, rounds: int = ROUNDS):
    """(best wall seconds, last result) over ``rounds`` runs."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        spec = _cell_spec(energy)
        start = time.perf_counter()
        result = run_spec(spec)
        best = min(best, time.perf_counter() - start)
    return best, result


def test_energy_attachment_overhead(benchmark):
    detached_s, detached = benchmark.pedantic(
        _best_cell_time, args=(False,), rounds=1, iterations=1
    )
    attached_s, attached = _best_cell_time(True)

    # The perf gate is only meaningful if attached == detached holds.
    assert _comparable_row(detached) == _comparable_row(attached)
    assert detached.energy is None and attached.energy is not None
    assert attached.energy.joules > 0

    ratio = detached_s / attached_s if attached_s > 0 else float("inf")
    print_figure(
        "energy: attached vs detached experiment cell",
        [{
            "approach": CELL_APPROACH,
            "detached_s": round(detached_s, 3),
            "attached_s": round(attached_s, 3),
            "throughput_ratio": round(ratio, 3),
            "floor": OVERHEAD_FLOOR,
            "joules": round(attached.energy.joules, 1),
        }],
    )
    record_bench(
        "energy", [],
        attachment_overhead={
            "throughput_ratio": round(ratio, 3),
            "floor": OVERHEAD_FLOOR,
        },
    )
    assert ratio >= OVERHEAD_FLOOR, (
        f"energy-attached cell keeps only {ratio:.3f}x of detached "
        f"throughput (floor {OVERHEAD_FLOOR}x)"
    )


def _objectives_beaten(first, second) -> int:
    """On how many objectives ``first`` is strictly better than ``second``."""
    beaten = 0
    for index, (_key, maximize) in enumerate(PARETO_OBJECTIVES):
        a, b = first[index], second[index]
        better = approx_le(b, a) if maximize else approx_le(a, b)
        if better and not approx_eq(a, b):
            beaten += 1
    return beaten


def test_pareto_front_prices_consolidation():
    scenario = _scenario()
    config = RunConfig(energy=EnergySpec())
    results = {}
    for approach in PARETO_APPROACHES:
        spec = CellSpec(scenario=scenario, approach=approach,
                        seed=BENCH_SEED, config=config)
        results[(scenario.name, approach)] = run_spec(spec)

    front = pareto_front(results)
    print_figure("energy: three-approach pareto sweep", front.rows())

    cram_rank = front.rank_of(scenario.name, "cram-ios")
    vectors = {entry.approach: entry.vector for entry in front.entries}
    beaten = _objectives_beaten(vectors["cram-ios"], vectors["manual"])
    record_bench(
        "energy", [],
        pareto={
            "cram_ios_rank": cram_rank,
            "objectives_beaten_vs_manual": beaten,
            "dominance_floor": DOMINANCE_FLOOR,
            "objectives": [key for key, _max in PARETO_OBJECTIVES],
        },
    )
    assert cram_rank == 1, "cram-ios fell off the pareto front"
    assert beaten >= DOMINANCE_FLOOR, (
        f"cram-ios beats manual on only {beaten} objectives "
        f"(floor {DOMINANCE_FLOOR}: fewer brokers must mean fewer joules)"
    )
