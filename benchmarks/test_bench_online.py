"""Steady-state: periodic full CROC vs the mixed online schedule.

The paper's control loop re-runs the full three-phase reconfiguration
every cycle.  This suite puts that baseline and the online mixed
schedule (estimator-driven subscription migrations between full
cycles, ``--online``) side by side on the same hostile scenario:
subscriber churn every cycle plus a fault plan that crashes 10% of the
brokers mid-profiling.

Asserted floors (recorded under ``floors`` in ``BENCH_online.json``):

* **delivery** — the mixed schedule's mean steady-state delivery rate
  is at least the periodic-full-CROC baseline's: the online trades must
  pay for their detach gaps with better load placement, not degrade
  end-to-end delivery;
* **disruption** — no cycle migrates more than 20% of the subscription
  pool, and the summed detach gap stays under 2% of each cycle's
  measurement window: incremental means incremental;
* **throughput** — the mixed schedule keeps delivering events every
  cycle (steady-state events/sec stays positive under churn + crashes).
"""

from __future__ import annotations

from conftest import BENCH_SCALE, BENCH_SEED, record_bench
from repro.core.config import RunConfig
from repro.core.online import OnlineSpec
from repro.experiments.continuous import SubscriberChurn
from repro.experiments.runner import ExperimentRunner
from repro.sim.faults import FaultPlan
from repro.sim.rng import SeededRng
from repro.workloads.scenarios import cluster_homogeneous

CYCLES = 3
MEASUREMENT_TIME = 30.0

#: Disruption ceilings the mixed schedule must respect.
MAX_MOVED_FRACTION = 0.20  # of the subscription pool, per cycle
MAX_GAP_FRACTION = 0.02    # detach seconds per measurement second

#: Broker output bandwidth (kB/s).  Tight enough that the pool cannot
#: collapse onto one broker — several brokers stay allocated and churn
#: pushes them across the hysteresis band, so the online steps have
#: real imbalances to trade away.
BROKER_BANDWIDTH_KBPS = 15.0

#: The mixed schedule under test: fij trades, two online steps per
#: cycle, full CROC skipped while predicted drift stays under 50%.
ONLINE = OnlineSpec(strategy="fij_trade", steps=2, drift_threshold=0.5,
                    gap=0.02)

_cache = {}


def _run(mode: str):
    """One continuous run; returns (reports, subscription_count)."""
    scenario = cluster_homogeneous(
        subscriptions_per_publisher=12,
        scale=BENCH_SCALE,
        broker_bandwidth_kbps=BROKER_BANDWIDTH_KBPS,
        profile_capacity=96,
        measurement_time=MEASUREMENT_TIME,
    )
    config = RunConfig(online=ONLINE) if mode == "mixed" else None
    approach = "fij-trade" if mode == "mixed" else "cram-ios"
    runner = ExperimentRunner(
        scenario,
        seed=BENCH_SEED,
        cram_failure_budget=150,
        fault_plan=FaultPlan(
            crash_fraction=0.1,
            crash_start=10.0,
            crash_stagger=2.0,
            seed=BENCH_SEED,
        ),
        config=config,
    )
    reports = runner.run_continuous(
        approach,
        cycles=CYCLES,
        profiling_time=scenario.derived_profiling_time(),
        measurement_time=MEASUREMENT_TIME,
        make_driver=lambda net: SubscriberChurn(net, SeededRng(BENCH_SEED)),
    )
    subscriptions = sum(
        len(subscriber.subscriptions)
        for subscriber in runner.network.subscribers.values()
    )
    return reports, subscriptions


def results(mode: str):
    if mode not in _cache:
        _cache[mode] = _run(mode)
    return _cache[mode]


def _rows(mode: str):
    reports, subscriptions = results(mode)
    rows = []
    for report in reports:
        row = report.as_row()
        row["mode"] = mode
        row["events_per_s"] = round(
            report.summary.delivery_count / MEASUREMENT_TIME, 3
        )
        row["moved_fraction"] = round(
            report.subscriptions_moved / max(1, subscriptions), 4
        )
        rows.append(row)
    return rows


def _mean_rate(mode: str) -> float:
    reports, _ = results(mode)
    return sum(r.summary.delivery_rate for r in reports) / len(reports)


def test_mixed_delivery_sustains_full_croc_baseline():
    full = _mean_rate("full")
    mixed = _mean_rate("mixed")
    assert mixed >= full, (
        f"mixed schedule mean delivery rate {mixed:.4f} fell below the "
        f"periodic-full-CROC baseline {full:.4f}"
    )


def test_mixed_disruption_stays_incremental():
    reports, subscriptions = results("mixed")
    assert subscriptions > 0
    for report in reports:
        fraction = report.subscriptions_moved / subscriptions
        assert fraction <= MAX_MOVED_FRACTION, (
            f"cycle {report.cycle} migrated {fraction:.1%} of the pool"
        )
        assert report.migration_gap_s <= MAX_GAP_FRACTION * MEASUREMENT_TIME, (
            f"cycle {report.cycle} spent {report.migration_gap_s:.2f}s detached"
        )


def test_mixed_keeps_delivering_under_churn_and_crashes():
    reports, _ = results("mixed")
    for report in reports:
        assert report.summary.delivery_count > 0, (
            f"cycle {report.cycle} delivered nothing"
        )
    assert all(report.online_steps == ONLINE.steps for report in reports)
    # The scenario is tuned so the online steps actually trade: a run
    # with zero migrations would make every disruption floor vacuous.
    assert sum(report.subscriptions_moved for report in reports) > 0


def test_record_trajectory():
    rows = _rows("full") + _rows("mixed")
    full_rate = _mean_rate("full")
    mixed_rate = _mean_rate("mixed")
    mixed_reports, subscriptions = results("mixed")
    record_bench(
        "online",
        rows,
        title=(
            "online: steady state under churn + 10% crashes, "
            "periodic full CROC vs mixed schedule"
        ),
        floors={
            "delivery_rate_vs_full_croc": ">=",
            "max_moved_fraction_per_cycle": MAX_MOVED_FRACTION,
            "max_gap_fraction_of_measurement": MAX_GAP_FRACTION,
        },
        aggregates={
            "cycles": CYCLES,
            "subscription_pool": subscriptions,
            "full_mean_delivery_rate": round(full_rate, 4),
            "mixed_mean_delivery_rate": round(mixed_rate, 4),
            "mixed_mean_events_per_s": round(
                sum(r.summary.delivery_count for r in mixed_reports)
                / (CYCLES * MEASUREMENT_TIME),
                3,
            ),
            "mixed_subscriptions_moved": sum(
                r.subscriptions_moved for r in mixed_reports
            ),
            "mixed_full_cycles_skipped": sum(
                1 for r in mixed_reports if r.skipped_reason
            ),
            "online_spec": {
                "strategy": ONLINE.strategy,
                "steps": ONLINE.steps,
                "drift_threshold": ONLINE.drift_threshold,
                "gap": ONLINE.gap,
            },
        },
    )
    assert mixed_rate >= full_rate
