"""Parallel sweep executor & engine fast-path benchmarks (paper-external).

Two measurements back the perf work in :mod:`repro.experiments.parallel`
and :mod:`repro.sim.engine`:

* **Sweep speedup** — a fixed 12-cell (4 scenarios × 3 approaches)
  matrix runs serially and with ``jobs=4``; the suite always asserts
  bit-identical rows (``computation_s`` excluded — it is a wall-clock
  measurement) and records the wall-clock speedup.  The ``>= 1.8x``
  floor is only asserted when at least 4 usable CPUs exist, so the
  gate is live on CI runners but a 1-core container still records its
  honest (sub-1x) number instead of failing on physics.
* **Engine events/sec** — the current event loop against an in-file
  replica of the pre-fast-path loop, on two engine-isolating
  workloads: a pre-scheduled drain with timestamp ties (exercises
  same-timestamp batching) and a cancel-heavy timer churn (exercises
  cancelled-event compaction).  Best-of-3 per engine; each workload
  must hold a >= 1.05x ratio.

Both figures land in ``BENCH_parallel.json`` with the core count and
gate status, so a trajectory reader can tell a real regression from a
starved runner.
"""

from __future__ import annotations

import heapq
import time

from conftest import BENCH_SEED, record_bench, print_figure
from repro.experiments.parallel import execute_cells, usable_cpus
from repro.experiments.sweeps import homogeneous_scenarios, sweep_specs
from repro.sim.engine import Simulator

# ----------------------------------------------------------------------
# Sweep speedup: serial vs --jobs 4 on a 12-cell matrix
# ----------------------------------------------------------------------

#: Fixed sizes (not the REPRO_BENCH_* knobs): the speedup floor below
#: is calibrated so pool start-up stays small against ~6 s of serial
#: work, and must not drift with the figure-suite scale.
PAR_SUBS = (6, 10, 14, 18)
PAR_SCALE = 0.2
PAR_MEASUREMENT_TIME = 30.0
PAR_APPROACHES = ("manual", "binpacking", "cram-ios")
PAR_JOBS = 4

#: Minimum speedup demanded of jobs=4 — asserted only with >= 4 CPUs.
SPEEDUP_FLOOR = 1.8


def _comparable_rows(results):
    """The bit-identity view of a result list (reprs pin float bits)."""
    rows = []
    for result in results:
        row = result.as_row()
        row.pop("computation_s")  # wall-clock measurement, not simulation output
        rows.append({key: repr(value) for key, value in row.items()})
    return rows


def test_sweep_speedup_and_bit_identity(benchmark):
    scenarios = homogeneous_scenarios(
        subs_sweep=PAR_SUBS, scale=PAR_SCALE,
        measurement_time=PAR_MEASUREMENT_TIME,
    )
    specs = sweep_specs(scenarios, PAR_APPROACHES, seed=BENCH_SEED)
    assert len(specs) == 12

    start = time.perf_counter()
    serial = execute_cells(specs, jobs=1)
    serial_s = time.perf_counter() - start

    def parallel_run():
        return execute_cells(specs, jobs=PAR_JOBS)

    start = time.perf_counter()
    parallel = benchmark.pedantic(parallel_run, rounds=1, iterations=1)
    parallel_s = time.perf_counter() - start

    # Bit-identity holds on every machine, regardless of core count.
    assert _comparable_rows(serial) == _comparable_rows(parallel)

    cores = usable_cpus()
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    gate_active = cores >= PAR_JOBS
    print_figure(
        "parallel: 12-cell sweep, serial vs jobs=4",
        [{
            "cells": len(specs),
            "jobs": PAR_JOBS,
            "usable_cpus": cores,
            "serial_s": round(serial_s, 3),
            "parallel_s": round(parallel_s, 3),
            "speedup": round(speedup, 3),
            "floor": SPEEDUP_FLOOR if gate_active else None,
        }],
    )
    record_bench(
        "parallel", [],
        sweep_speedup={
            "speedup": round(speedup, 3),
            "usable_cpus": cores,
            "floor": SPEEDUP_FLOOR,
            "floor_asserted": gate_active,
        },
    )
    if gate_active:
        assert speedup >= SPEEDUP_FLOOR, (
            f"jobs={PAR_JOBS} speedup {speedup:.2f}x below the "
            f"{SPEEDUP_FLOOR}x floor on a {cores}-CPU machine"
        )


# ----------------------------------------------------------------------
# Engine events/sec: current loop vs the pre-fast-path loop
# ----------------------------------------------------------------------


class LegacySimulator(Simulator):
    """The event loop as it stood before same-timestamp batching and
    cancelled-event compaction — a faithful replica of the old
    ``Simulator.run`` so the ratio isolates the loop change itself.
    """

    def run(self, until=None, max_events=None):  # noqa: D102 - replica
        executed = 0
        try:
            while self._heap:
                event_time, _seq, event = self._heap[0]
                if until is not None and event_time > until:
                    break
                heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self._now = event_time
                event.callback()
                self._events_processed += 1
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until


def _noop():
    return None


def drain_ties_workload(sim_class, groups=4000, ties=8):
    """Pre-scheduled no-op drain with heavy timestamp ties (the shape
    of clustered arrivals under a fixed link latency)."""
    sim = sim_class()
    for group in range(groups):
        at = group * 0.001
        for _ in range(ties):
            sim.schedule_at(at, _noop)
    events = groups * ties
    start = time.perf_counter()
    sim.run()
    return events, time.perf_counter() - start


def timer_churn_workload(sim_class, timers=4096, live_chain=20000):
    """Cancel-heavy churn: a pile of far-future timers is cancelled up
    front (BIR aggregation / retry-deadline shape), then a self-
    rescheduling chain pays the per-event heap cost of whatever
    corpses the engine still carries."""
    sim = sim_class()
    pending = [sim.schedule_at(1.0e6 + i, _noop) for i in range(timers)]
    for index, event in enumerate(pending):
        if index % 64:  # leave a sparse survivor set
            event.cancel()

    remaining = [live_chain]

    def step():
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.schedule(0.001, step)

    sim.schedule(0.001, step)
    start = time.perf_counter()
    sim.run(until=0.001 * (live_chain + 2))
    return live_chain, time.perf_counter() - start


def _best_rate(workload, sim_class, rounds=3):
    best = 0.0
    for _ in range(rounds):
        events, elapsed = workload(sim_class)
        best = max(best, events / elapsed if elapsed > 0 else float("inf"))
    return best


def test_engine_events_per_second(benchmark):
    workloads = (
        ("drain-ties", drain_ties_workload),
        ("timer-churn", timer_churn_workload),
    )

    def measure():
        rows = []
        for name, workload in workloads:
            new_rate = _best_rate(workload, Simulator)
            legacy_rate = _best_rate(workload, LegacySimulator)
            rows.append({
                "workload": name,
                "events_per_s": round(new_rate),
                "legacy_events_per_s": round(legacy_rate),
                "ratio": round(new_rate / legacy_rate, 3),
            })
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_figure("parallel: engine events/sec, fast-path vs legacy loop", rows)
    for row in rows:
        assert row["ratio"] >= 1.05, (
            f"{row['workload']}: fast-path loop only {row['ratio']}x of the "
            "legacy loop (floor 1.05x)"
        )
