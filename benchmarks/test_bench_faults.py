"""Availability under injected faults (paper-external robustness study).

The paper evaluates CROC on a fault-free testbed; this suite measures
how the reproduction's degraded-mode machinery holds up when brokers
crash and the fabric drops or delays messages.  One cram-ios cell runs
per fault level, from fault-free to 20% broker crashes with 5% loss,
and the rows carry the availability counters
(:meth:`~repro.pubsub.metrics.MetricsSummary.fault_row`) next to the
paper's broker-reduction headline.

Asserted floors:

* the fault-free cell delivers everything (``delivery_rate == 1.0``)
  and records no fault activity;
* with 10% of brokers crashing mid-profiling, the degraded
  reconfiguration still completes and end-to-end delivery stays at or
  above 90% — the acceptance bar for the fault subsystem;
* every cell still deallocates brokers (the green objective survives
  the fault handling).
"""

from __future__ import annotations

from conftest import BENCH_SCALE, BENCH_SEED, print_figure
from repro.experiments.runner import ExperimentRunner
from repro.sim.faults import FaultPlan
from repro.workloads.scenarios import cluster_homogeneous

APPROACH = "cram-ios"

#: (crash_fraction, loss_rate) per cell, fault-free first.
FAULT_CELLS = ((0.0, 0.0), (0.1, 0.0), (0.1, 0.02), (0.2, 0.05))

_cache = {}


def _plan(crash_fraction, loss_rate):
    if crash_fraction <= 0.0 and loss_rate <= 0.0:
        return FaultPlan()
    return FaultPlan(
        crash_fraction=crash_fraction,
        crash_start=10.0,
        crash_stagger=2.0,
        loss_rate=loss_rate,
        seed=BENCH_SEED,
    )


def fault_results():
    if not _cache:
        scenario = cluster_homogeneous(
            subscriptions_per_publisher=12,
            scale=BENCH_SCALE,
            measurement_time=40.0,
        )
        _cache["scenario"] = scenario
        _cache["results"] = {
            cell: ExperimentRunner(
                scenario,
                seed=BENCH_SEED,
                cram_failure_budget=150,
                fault_plan=_plan(*cell),
            ).run(APPROACH)
            for cell in FAULT_CELLS
        }
    return _cache


def test_fig_faults_availability(benchmark):
    cache = benchmark.pedantic(fault_results, rounds=1, iterations=1)
    results = cache["results"]
    rows = []
    for crash_fraction, loss_rate in FAULT_CELLS:
        result = results[(crash_fraction, loss_rate)]
        row = {
            "crash_fraction": crash_fraction,
            "loss_rate": loss_rate,
            "allocated_brokers": result.allocated_brokers,
            "broker_reduction_pct": round(100 * result.broker_reduction, 1),
        }
        row.update(result.summary.fault_row())
        rows.append(row)
    print_figure("faults: delivery rate & broker reduction vs failure rate", rows)

    clean = results[(0.0, 0.0)].summary
    assert clean.delivery_rate == 1.0
    assert clean.broker_crashes == 0
    assert clean.publications_lost == 0

    degraded = results[(0.1, 0.0)]
    assert degraded.summary.broker_crashes >= 1
    assert degraded.summary.delivery_rate >= 0.9, (
        "degraded reconfiguration must keep >= 90% delivery at 10% crashes"
    )
    assert degraded.summary.delivery_count > 0

    for cell in FAULT_CELLS:
        assert results[cell].broker_reduction > 0.0, (
            f"fault handling must not cost the green objective at {cell}"
        )
