"""fig-grape: publisher relocation alone cannot reduce the message rate.

Paper §II-B: "these approaches cannot reduce the overall system message
rate if at least one subscriber subscribes to the same subscription at
every broker ... relocating only publishers have no impact on the
broker system message rate, while our approach achieves reductions of
up to 92%."

The bench constructs that adversarial workload (one identical
subscriber per symbol on *every* broker), then measures (1) the MANUAL
baseline, (2) GRAPE-only publisher relocation on the unchanged
tree/subscribers, and (3) the full 3-phase reconfiguration.
"""

from __future__ import annotations

import pytest

from conftest import BENCH_SCALE, print_figure
from repro.core.baselines import manual_deployment
from repro.core.cram import CramAllocator
from repro.core.croc import Croc
from repro.core.deployment import BrokerTree, Deployment
from repro.core.grape import GrapeRelocator
from repro.core.units import AllocationUnit
from repro.pubsub.client import PublisherClient, SubscriberClient
from repro.pubsub.message import Subscription
from repro.pubsub.network import PubSubNetwork
from repro.pubsub.predicate import parse_predicates
from repro.sim.rng import SeededRng
from repro.workloads.scenarios import cluster_homogeneous
from repro.workloads.stocks import StockQuoteFeed, stock_advertisement

MEASURE = 30.0


def _build():
    scenario = cluster_homogeneous(
        subscriptions_per_publisher=1, scale=BENCH_SCALE,
        broker_bandwidth_kbps=250.0,
    )
    network = PubSubNetwork(profile_capacity=scenario.profile_capacity)
    for spec in scenario.broker_specs():
        network.add_broker(spec)
    rng = SeededRng(2011, "grape-bench")
    sub_ids = []
    for symbol in scenario.symbols:
        publisher = PublisherClient(
            client_id=f"pub-{symbol}",
            advertisement=stock_advertisement(symbol),
            feed=StockQuoteFeed(symbol, rng),
            rate=scenario.publication_rate,
            size_kb=scenario.message_kb,
        )
        network.register_publisher(publisher)
        for spec in network.broker_pool():
            sub_id = f"sub-{symbol}-at-{spec.broker_id}"
            subscription = Subscription(
                sub_id=sub_id, subscriber_id=sub_id,
                predicates=parse_predicates(
                    [("class", "=", "STOCK"), ("symbol", "=", symbol)]
                ),
            )
            network.register_subscriber(SubscriberClient(sub_id, [subscription]))
            sub_ids.append(sub_id)
    return scenario, network, sub_ids


def _measure(network):
    network.run(3.0)
    network.metrics.reset_window()
    network.run(MEASURE)
    pool = network.broker_pool()
    return network.metrics.summary(
        len(pool), network.active_brokers,
        {s.broker_id: s.total_output_bandwidth for s in pool},
    )


def run_comparison():
    scenario, network, sub_ids = _build()
    manual = manual_deployment(
        network.broker_pool(), [],
        [p.adv_id for p in network.publishers.values()],
        SeededRng(2011, "manual"),
    )
    for sub_id in sub_ids:
        manual.subscription_placement[sub_id] = sub_id.rsplit("-at-", 1)[1]
    network.apply_deployment(manual)
    network.run(scenario.derived_profiling_time())
    baseline = _measure(network)

    croc = Croc(allocator_factory=lambda: CramAllocator("ios"),
                grape=GrapeRelocator("load"))
    gathered = croc.gather(network)
    tree = BrokerTree(manual.tree.root)
    for parent, child in manual.tree.edges():
        tree.add_broker(child, parent)
    for record in gathered.records:
        unit = AllocationUnit.for_subscription(record, gathered.directory)
        tree.set_units(record.home_broker,
                       list(tree.broker_units[record.home_broker]) + [unit])
    grape_only = Deployment(
        tree=tree,
        subscription_placement=dict(manual.subscription_placement),
        publisher_placement=GrapeRelocator("load").place_publishers(
            tree, gathered.directory
        ),
        approach="grape-only",
    )
    network.apply_deployment(grape_only)
    grape_summary = _measure(network)

    croc.reconfigure(network)
    full_summary = _measure(network)
    return baseline, grape_summary, full_summary


def test_fig_grape_limitation(benchmark):
    baseline, grape_summary, full_summary = benchmark.pedantic(
        run_comparison, rounds=1, iterations=1
    )
    base = baseline.avg_broker_message_rate
    rows = [
        {"configuration": "manual", "avg_broker_rate": round(base, 3),
         "reduction_pct": 0.0, "active_brokers": baseline.active_brokers},
        {"configuration": "grape-only",
         "avg_broker_rate": round(grape_summary.avg_broker_message_rate, 3),
         "reduction_pct": round(
             100 * (1 - grape_summary.avg_broker_message_rate / base), 1),
         "active_brokers": grape_summary.active_brokers},
        {"configuration": "full-croc",
         "avg_broker_rate": round(full_summary.avg_broker_message_rate, 3),
         "reduction_pct": round(
             100 * (1 - full_summary.avg_broker_message_rate / base), 1),
         "active_brokers": full_summary.active_brokers},
    ]
    print_figure("fig-grape: adversarial same-subscription-everywhere workload",
                 rows)
    grape_reduction = 1 - grape_summary.avg_broker_message_rate / base
    full_reduction = 1 - full_summary.avg_broker_message_rate / base
    assert abs(grape_reduction) < 0.15, (
        "publisher relocation alone must have (almost) no effect"
    )
    assert full_reduction > 0.4, (
        "the full 3-phase reconfiguration must still cut the message rate"
    )
    assert full_summary.active_brokers < baseline.active_brokers
