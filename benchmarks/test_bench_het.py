"""Heterogeneous-cluster figures (paper §VI, throttled broker tiers).

15 brokers at full network capacity, 25 at 50%, 40 at 25% (scaled), and
a decreasing subscription share per publisher.  Regenerates the
message-rate and allocated-broker figures and asserts the paper's
shapes: capacity-aware approaches consolidate onto the resourceful
tier; baselines keep the whole pool powered.
"""

from __future__ import annotations

import pytest

from conftest import BENCH_SCALE, BENCH_SUBS, print_figure, run_matrix
from repro.workloads.scenarios import cluster_heterogeneous

APPROACHES = ("manual", "automatic", "pairwise-n", "fbf", "binpacking",
              "cram-ios", "cram-iou")

_cache = {}


def het_results():
    if not _cache:
        scenarios = {
            ns: cluster_heterogeneous(ns=ns, scale=BENCH_SCALE, measurement_time=40.0)
            for ns in BENCH_SUBS
        }
        _cache["scenarios"] = scenarios
        _cache["results"] = run_matrix(scenarios, APPROACHES)
    return _cache


def _rows(metric_key):
    cache = het_results()
    rows = []
    for ns in BENCH_SUBS:
        row = {"ns": ns,
               "total_subscriptions": cache["scenarios"][ns].total_subscriptions}
        for approach in APPROACHES:
            row[approach] = cache["results"][(ns, approach)].as_row()[metric_key]
        rows.append(row)
    return rows


def test_fig_het_message_rate(benchmark):
    cache = benchmark.pedantic(het_results, rounds=1, iterations=1)
    print_figure("fig-het-msgrate: avg broker message rate (msg/s), heterogeneous",
                 _rows("avg_broker_message_rate"))
    for ns in BENCH_SUBS:
        results = cache["results"]
        manual = results[(ns, "manual")].summary.avg_broker_message_rate
        for approach in ("binpacking", "cram-ios", "cram-iou"):
            assert results[(ns, approach)].summary.avg_broker_message_rate < manual
        assert results[(ns, "cram-ios")].message_rate_reduction > 0.3


def test_fig_het_brokers(benchmark):
    cache = benchmark.pedantic(het_results, rounds=1, iterations=1)
    print_figure("fig-het-brokers: allocated brokers, heterogeneous",
                 _rows("allocated_brokers"))
    results = cache["results"]
    pool = cache["scenarios"][BENCH_SUBS[0]].broker_count
    for ns in BENCH_SUBS:
        for baseline in ("manual", "automatic", "pairwise-n"):
            assert results[(ns, baseline)].allocated_brokers == pool
        assert results[(ns, "cram-ios")].broker_reduction > 0.4
        cram = results[(ns, "cram-ios")].extra["phase2_brokers"]
        binpack = results[(ns, "binpacking")].extra["phase2_brokers"]
        assert cram <= binpack


def test_fig_het_consolidates_onto_resourceful_tier(benchmark):
    """The allocators fill the 100%-capacity tier first (descending-
    capacity first fit), leaving the throttled tiers dark."""
    cache = benchmark.pedantic(het_results, rounds=1, iterations=1)
    ns = BENCH_SUBS[-1]
    scenario = cache["scenarios"][ns]
    specs = {spec.broker_id: spec for spec in scenario.broker_specs()}
    top = max(spec.total_output_bandwidth for spec in specs.values())
    result = cache["results"][(ns, "binpacking")]
    runner_active = [
        broker_id
        for broker_id, rate in result.summary.per_broker_rates.items()
        if rate > 0 and broker_id in specs
    ]
    resourceful = [
        broker_id
        for broker_id in runner_active
        if specs[broker_id].total_output_bandwidth == top
    ]
    assert resourceful, "at least one full-capacity broker stays active"
