"""Observability overhead benchmarks (paper-external).

Two measurements back the obs layer's "attached costs <= 5%" contract
(the detached path is separately pinned *bit-identical* to an
uninstrumented build by ``tests/test_obs_equivalence.py``, so only the
attached side needs a perf gate):

* **End-to-end cell** — one cram-ios experiment cell runs with and
  without a recorder (spans + counters + the timeline sampler chunking
  ``network.run``); best-of-3 wall times must keep the attached run
  within ``OVERHEAD_FLOOR`` of detached throughput, and the result rows
  must stay bit-identical.
* **Engine loop** — the two engine-isolating workloads from the
  parallel suite run with a recorder attached, showing the inline hook
  cost on the hot loop itself (the hooks are local-variable counters,
  so attached ~ detached here by construction).

Both figures land in ``BENCH_obs.json``; ``bench-results/`` keeps a
captured baseline.
"""

from __future__ import annotations

import time

from conftest import BENCH_SEED, print_figure, record_bench
from test_bench_parallel import drain_ties_workload, timer_churn_workload

from repro import obs
from repro.experiments.parallel import CellSpec, run_spec
from repro.experiments.sweeps import homogeneous_scenarios

#: Attached must retain at least this fraction of detached throughput
#: (0.95 == the ISSUE's "<= 5% overhead" acceptance bound).
OVERHEAD_FLOOR = 0.95

CELL_SUBS = 10
CELL_SCALE = 0.2
CELL_MEASUREMENT_TIME = 30.0
CELL_APPROACH = "cram-ios"
ROUNDS = 3


def _cell_spec(observe: bool) -> CellSpec:
    scenario = homogeneous_scenarios(
        subs_sweep=(CELL_SUBS,), scale=CELL_SCALE,
        measurement_time=CELL_MEASUREMENT_TIME,
    )[0]
    return CellSpec(scenario=scenario, approach=CELL_APPROACH,
                    seed=BENCH_SEED, observe=observe)


def _comparable_row(result) -> dict:
    row = result.as_row()
    row.pop("computation_s")  # wall-clock measurement, not simulation output
    return {key: repr(value) for key, value in row.items()}


def _best_cell_time(observe: bool, rounds: int = ROUNDS):
    """(best wall seconds, last result) over ``rounds`` runs."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        spec = _cell_spec(observe)
        start = time.perf_counter()
        result = run_spec(spec)
        best = min(best, time.perf_counter() - start)
    return best, result


def test_cell_attached_overhead(benchmark):
    detached_s, detached = benchmark.pedantic(
        _best_cell_time, args=(False,), rounds=1, iterations=1
    )
    attached_s, attached = _best_cell_time(True)

    # The perf gate is only meaningful if attached == detached holds.
    assert _comparable_row(detached) == _comparable_row(attached)
    assert attached.obs is not None and detached.obs is None
    assert attached.obs["counters"]["engine.events_processed"] > 0
    assert attached.obs["samples"], "timeline sampler took no samples"

    ratio = detached_s / attached_s if attached_s > 0 else float("inf")
    print_figure(
        "obs: attached vs detached experiment cell",
        [{
            "approach": CELL_APPROACH,
            "detached_s": round(detached_s, 3),
            "attached_s": round(attached_s, 3),
            "throughput_ratio": round(ratio, 3),
            "floor": OVERHEAD_FLOOR,
            "spans": len(attached.obs["spans"]),
            "samples": len(attached.obs["samples"]),
        }],
    )
    record_bench(
        "obs", [],
        cell_overhead={
            "throughput_ratio": round(ratio, 3),
            "floor": OVERHEAD_FLOOR,
        },
    )
    assert ratio >= OVERHEAD_FLOOR, (
        f"attached cell keeps only {ratio:.3f}x of detached throughput "
        f"(floor {OVERHEAD_FLOOR}x)"
    )


def _best_rate(workload, attach: bool, rounds: int = ROUNDS) -> float:
    from repro.sim.engine import Simulator

    best = 0.0
    for _ in range(rounds):
        if attach:
            with obs.attached(obs.Recorder()):
                events, elapsed = workload(Simulator)
        else:
            events, elapsed = workload(Simulator)
        best = max(best, events / elapsed if elapsed > 0 else float("inf"))
    return best


def test_engine_hook_overhead(benchmark):
    workloads = (
        ("drain-ties", drain_ties_workload),
        ("timer-churn", timer_churn_workload),
    )
    rows = []
    ratios = {}
    for index, (name, workload) in enumerate(workloads):
        if index == 0:
            detached = benchmark.pedantic(
                _best_rate, args=(workload, False), rounds=1, iterations=1
            )
        else:
            detached = _best_rate(workload, False)
        attached = _best_rate(workload, True)
        ratio = attached / detached if detached > 0 else float("inf")
        ratios[name] = round(ratio, 3)
        rows.append({
            "workload": name,
            "detached_events_s": round(detached),
            "attached_events_s": round(attached),
            "ratio": round(ratio, 3),
            "floor": OVERHEAD_FLOOR,
        })
    print_figure("obs: engine events/sec, recorder attached vs detached", rows)
    record_bench(
        "obs", [],
        engine_hook_ratios={"floor": OVERHEAD_FLOOR, **ratios},
    )
    for row in rows:
        assert row["ratio"] >= OVERHEAD_FLOOR, (
            f"{row['workload']}: attached engine keeps only "
            f"{row['ratio']}x of detached throughput (floor {OVERHEAD_FLOOR}x)"
        )
